#include "subscription/printer.h"

#include "common/contracts.h"

namespace ncps {

namespace {

/// Operators with direct surface syntax in the subscription language.
bool has_surface_syntax(Operator op) {
  switch (op) {
    case Operator::Eq:
    case Operator::Ne:
    case Operator::Lt:
    case Operator::Le:
    case Operator::Gt:
    case Operator::Ge:
    case Operator::Between:
    case Operator::Prefix:
    case Operator::Suffix:
    case Operator::Contains:
    case Operator::Exists:
      return true;
    default:
      return false;
  }
}

void print_predicate(const Predicate& p, const AttributeRegistry& attrs,
                     std::string& out) {
  if (!has_surface_syntax(p.op)) {
    // Complement operators print as not(<positive form>).
    out += "not (";
    print_predicate(p.complemented(), attrs, out);
    out += ')';
    return;
  }
  out += attrs.name(p.attribute);
  switch (p.op) {
    case Operator::Between:
      out += " between ";
      out += p.lo.to_display_string();
      out += " and ";
      out += p.hi.to_display_string();
      return;
    case Operator::Prefix:
    case Operator::Suffix:
    case Operator::Contains:
      out += ' ';
      out += to_string(p.op);
      out += ' ';
      out += p.lo.to_display_string();
      return;
    case Operator::Exists:
      out += " exists";
      return;
    default:
      out += ' ';
      out += to_string(p.op);
      out += ' ';
      out += p.lo.to_display_string();
      return;
  }
}

void print_node(const ast::Node& node, const PredicateTable& table,
                const AttributeRegistry& attrs, bool parenthesize,
                std::string& out) {
  switch (node.kind) {
    case ast::NodeKind::Leaf:
      print_predicate(table.get(node.pred), attrs, out);
      return;
    case ast::NodeKind::Not:
      out += "not ";
      print_node(*node.children.front(), table, attrs, /*parenthesize=*/true,
                 out);
      return;
    case ast::NodeKind::And:
    case ast::NodeKind::Or: {
      const char* joiner = node.kind == ast::NodeKind::And ? " and " : " or ";
      if (parenthesize) out += '(';
      bool first = true;
      for (const auto& c : node.children) {
        if (!first) out += joiner;
        first = false;
        print_node(*c, table, attrs, /*parenthesize=*/true, out);
      }
      if (parenthesize) out += ')';
      return;
    }
  }
  NCPS_ASSERT(false && "unknown node kind");
}

}  // namespace

std::string print_expression(const ast::Node& node, const PredicateTable& table,
                             const AttributeRegistry& attrs) {
  std::string out;
  print_node(node, table, attrs, /*parenthesize=*/false, out);
  return out;
}

}  // namespace ncps
