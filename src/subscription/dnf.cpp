#include "subscription/dnf.h"

#include <algorithm>

#include "common/contracts.h"

namespace ncps {

namespace {

ast::NodePtr nnf_rec(const ast::Node& node, bool negate,
                     PredicateTable& table) {
  switch (node.kind) {
    case ast::NodeKind::Leaf: {
      if (!negate) {
        table.add_ref(node.pred);
        return ast::leaf(node.pred);
      }
      const Predicate complemented = table.get(node.pred).complemented();
      return ast::leaf(table.intern(complemented).id);
    }
    case ast::NodeKind::Not:
      return nnf_rec(*node.children.front(), !negate, table);
    case ast::NodeKind::And:
    case ast::NodeKind::Or: {
      std::vector<ast::NodePtr> children;
      children.reserve(node.children.size());
      for (const auto& c : node.children) {
        children.push_back(nnf_rec(*c, negate, table));
      }
      // De Morgan: negation swaps the connective.
      const bool is_and = (node.kind == ast::NodeKind::And) != negate;
      return is_and ? ast::make_and(std::move(children))
                    : ast::make_or(std::move(children));
    }
  }
  NCPS_ASSERT(false && "unknown node kind");
}

Disjunct merge_sorted_unique(const Disjunct& a, const Disjunct& b) {
  Disjunct out;
  out.reserve(a.size() + b.size());
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(out));
  return out;
}

std::vector<Disjunct> dnf_rec(const ast::Node& node,
                              const DnfOptions& options) {
  switch (node.kind) {
    case ast::NodeKind::Leaf:
      return {{node.pred}};
    case ast::NodeKind::Not:
      throw std::logic_error("to_dnf requires NNF input (call to_nnf first)");
    case ast::NodeKind::Or: {
      std::vector<Disjunct> out;
      for (const auto& c : node.children) {
        std::vector<Disjunct> child = dnf_rec(*c, options);
        if (out.size() + child.size() > options.max_disjuncts) {
          throw DnfExplosionError(out.size() + child.size());
        }
        out.insert(out.end(), std::make_move_iterator(child.begin()),
                   std::make_move_iterator(child.end()));
      }
      return out;
    }
    case ast::NodeKind::And: {
      std::vector<Disjunct> acc = {{}};  // one empty conjunction
      for (const auto& c : node.children) {
        const std::vector<Disjunct> child = dnf_rec(*c, options);
        const std::uint64_t next_size =
            static_cast<std::uint64_t>(acc.size()) * child.size();
        if (next_size > options.max_disjuncts) {
          throw DnfExplosionError(next_size);
        }
        std::vector<Disjunct> next;
        next.reserve(static_cast<std::size_t>(next_size));
        for (const auto& a : acc) {
          for (const auto& b : child) {
            next.push_back(merge_sorted_unique(a, b));
          }
        }
        acc = std::move(next);
      }
      return acc;
    }
  }
  NCPS_ASSERT(false && "unknown node kind");
}

void dedup_disjuncts(std::vector<Disjunct>& disjuncts) {
  std::sort(disjuncts.begin(), disjuncts.end());
  disjuncts.erase(std::unique(disjuncts.begin(), disjuncts.end()),
                  disjuncts.end());
}

void absorb_disjuncts(std::vector<Disjunct>& disjuncts) {
  // Remove any disjunct that is a superset of another: X ∨ (X∧Y) = X.
  // Sort by width so potential absorbers come first.
  std::sort(disjuncts.begin(), disjuncts.end(),
            [](const Disjunct& a, const Disjunct& b) {
              return a.size() < b.size();
            });
  std::vector<Disjunct> kept;
  for (auto& candidate : disjuncts) {
    const bool absorbed = std::any_of(
        kept.begin(), kept.end(), [&](const Disjunct& k) {
          return std::includes(candidate.begin(), candidate.end(), k.begin(),
                               k.end());
        });
    if (!absorbed) kept.push_back(std::move(candidate));
  }
  disjuncts = std::move(kept);
}

constexpr std::uint64_t sat_add(std::uint64_t a, std::uint64_t b) {
  return a > UINT64_MAX - b ? UINT64_MAX : a + b;
}

constexpr std::uint64_t sat_mul(std::uint64_t a, std::uint64_t b) {
  if (a == 0 || b == 0) return 0;
  return a > UINT64_MAX / b ? UINT64_MAX : a * b;
}

DnfSize estimate_rec(const ast::Node& node, bool negate) {
  switch (node.kind) {
    case ast::NodeKind::Leaf:
      return {1, 1};
    case ast::NodeKind::Not:
      return estimate_rec(*node.children.front(), !negate);
    case ast::NodeKind::And:
    case ast::NodeKind::Or: {
      const bool is_and = (node.kind == ast::NodeKind::And) != negate;
      if (!is_and) {
        DnfSize sum;
        for (const auto& c : node.children) {
          const DnfSize s = estimate_rec(*c, negate);
          sum.disjuncts = sat_add(sum.disjuncts, s.disjuncts);
          sum.literal_entries = sat_add(sum.literal_entries, s.literal_entries);
        }
        return sum;
      }
      // AND: disjuncts multiply; every disjunct of child i is replicated
      // once per combination of the other children's disjuncts.
      DnfSize prod{1, 0};
      for (const auto& c : node.children) {
        const DnfSize s = estimate_rec(*c, negate);
        prod.literal_entries =
            sat_add(sat_mul(prod.literal_entries, s.disjuncts),
                    sat_mul(s.literal_entries, prod.disjuncts));
        prod.disjuncts = sat_mul(prod.disjuncts, s.disjuncts);
      }
      return prod;
    }
  }
  NCPS_ASSERT(false && "unknown node kind");
}

}  // namespace

ast::Expr to_nnf(const ast::Node& root, PredicateTable& table) {
  ast::NodePtr nnf = nnf_rec(root, /*negate=*/false, table);
  ast::flatten(*nnf);
  return ast::Expr(std::move(nnf), table, ast::Expr::AdoptRefs{});
}

Dnf to_dnf(const ast::Node& nnf_root, const DnfOptions& options) {
  Dnf dnf;
  dnf.disjuncts = dnf_rec(nnf_root, options);
  if (options.dedup_disjuncts) dedup_disjuncts(dnf.disjuncts);
  if (options.absorb) absorb_disjuncts(dnf.disjuncts);
  return dnf;
}

Dnf canonicalize(const ast::Node& root, PredicateTable& table,
                 ast::Expr& nnf_holder, const DnfOptions& options) {
  nnf_holder = to_nnf(root, table);
  return to_dnf(nnf_holder.root(), options);
}

DnfSize estimate_dnf_size(const ast::Node& root) {
  return estimate_rec(root, /*negate=*/false);
}

}  // namespace ncps
