#include "subscription/simplify.h"

#include <vector>

#include "subscription/covering.h"

namespace ncps {

namespace {

/// Budget for the covering checks inside simplification: redundancy pruning
/// is an optimisation, so an unprovable (or too-expensive) implication is
/// simply not exploited.
DnfOptions pruning_budget() {
  DnfOptions options;
  options.max_disjuncts = 64;
  return options;
}

/// Every event satisfying `a` satisfies `b`?
bool subtree_implies(const ast::Node& a, const ast::Node& b,
                     PredicateTable& table) {
  if (a.kind == ast::NodeKind::Leaf && b.kind == ast::NodeKind::Leaf) {
    return predicate_implies(table.get(a.pred), table.get(b.pred));
  }
  return covers(b, a, table, pruning_budget());
}

ast::NodePtr simplify_rec(const ast::Node& node, PredicateTable& table) {
  switch (node.kind) {
    case ast::NodeKind::Leaf:
      return ast::leaf(node.pred);
    case ast::NodeKind::Not:
      return ast::make_not(simplify_rec(*node.children.front(), table));
    case ast::NodeKind::And:
    case ast::NodeKind::Or:
      break;
  }

  std::vector<ast::NodePtr> children;
  children.reserve(node.children.size());
  for (const auto& c : node.children) {
    children.push_back(simplify_rec(*c, table));
  }

  // Redundancy pruning. In a conjunction, a child implied by a sibling adds
  // no constraint; in a disjunction, a child that implies a sibling adds no
  // events. Mutually-implying (equivalent) children keep the first one.
  const bool is_and = node.kind == ast::NodeKind::And;
  std::vector<bool> redundant(children.size(), false);
  for (std::size_t i = 0; i < children.size(); ++i) {
    for (std::size_t j = 0; j < children.size() && !redundant[i]; ++j) {
      if (i == j || redundant[j]) continue;
      const ast::Node& weak = is_and ? *children[i] : *children[j];
      const ast::Node& strong = is_and ? *children[j] : *children[i];
      if (!subtree_implies(strong, weak, table)) continue;
      // i is redundant w.r.t. j — unless they are mutually implied and j
      // comes later (then j will be dropped in favour of i).
      const bool mutual = subtree_implies(weak, strong, table);
      if (!mutual || j < i) redundant[i] = true;
    }
  }

  std::vector<ast::NodePtr> kept;
  kept.reserve(children.size());
  for (std::size_t i = 0; i < children.size(); ++i) {
    if (!redundant[i]) kept.push_back(std::move(children[i]));
  }
  NCPS_ASSERT(!kept.empty());
  if (kept.size() == 1) return std::move(kept.front());
  return is_and ? ast::make_and(std::move(kept))
                : ast::make_or(std::move(kept));
}

}  // namespace

ast::Expr simplify(const ast::Node& root, PredicateTable& table) {
  ast::NodePtr out = simplify_rec(root, table);
  ast::flatten(*out);
  return ast::Expr(std::move(out), table, ast::Expr::AddRefs{});
}

ast::Expr merge_subscriptions(const ast::Node& a, const ast::Node& b,
                              PredicateTable& table) {
  if (covers(a, b, table, pruning_budget())) {
    return ast::Expr(ast::clone(a), table, ast::Expr::AddRefs{});
  }
  if (covers(b, a, table, pruning_budget())) {
    return ast::Expr(ast::clone(b), table, ast::Expr::AddRefs{});
  }
  std::vector<ast::NodePtr> both;
  both.push_back(ast::clone(a));
  both.push_back(ast::clone(b));
  const ast::NodePtr merged = ast::make_or(std::move(both));
  return simplify(*merged, table);
}

}  // namespace ncps
