#include "subscription/parser.h"

#include <cctype>
#include <charconv>
#include <optional>

#include "common/contracts.h"

namespace ncps {

namespace {

using parser_detail::RawNode;
using parser_detail::RawNodePtr;

enum class TokenKind : std::uint8_t {
  Identifier,  // attribute names and keywords
  Integer,
  Float,
  String,
  CompareOp,  // == != < <= > >=
  LParen,
  RParen,
  End,
};

struct Token {
  TokenKind kind = TokenKind::End;
  std::string_view text;
  std::size_t position = 0;
};

class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) {}

  Token next() {
    skip_whitespace();
    const std::size_t start = pos_;
    if (pos_ >= text_.size()) return {TokenKind::End, {}, start};
    const char c = text_[pos_];
    if (c == '(') { ++pos_; return {TokenKind::LParen, slice(start), start}; }
    if (c == ')') { ++pos_; return {TokenKind::RParen, slice(start), start}; }
    if (c == '"') return lex_string(start);
    if (std::isdigit(static_cast<unsigned char>(c)) || c == '-' || c == '+') {
      return lex_number(start);
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      return lex_identifier(start);
    }
    if (c == '=' || c == '!' || c == '<' || c == '>') return lex_operator(start);
    throw ParseError("unexpected character '" + std::string(1, c) + "'", pos_);
  }

 private:
  void skip_whitespace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  std::string_view slice(std::size_t start) const {
    return text_.substr(start, pos_ - start);
  }

  Token lex_string(std::size_t start) {
    ++pos_;  // opening quote
    while (pos_ < text_.size() && text_[pos_] != '"') ++pos_;
    if (pos_ >= text_.size()) throw ParseError("unterminated string", start);
    ++pos_;  // closing quote
    // text includes quotes; parser strips them
    return {TokenKind::String, slice(start), start};
  }

  Token lex_number(std::size_t start) {
    if (text_[pos_] == '-' || text_[pos_] == '+') ++pos_;
    bool is_float = false;
    bool any_digit = false;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        any_digit = true;
        ++pos_;
      } else if (c == '.' && !is_float) {
        is_float = true;
        ++pos_;
      } else if ((c == 'e' || c == 'E') && any_digit) {
        is_float = true;
        ++pos_;
        if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
          ++pos_;
        }
      } else {
        break;
      }
    }
    if (!any_digit) throw ParseError("malformed number", start);
    return {is_float ? TokenKind::Float : TokenKind::Integer, slice(start),
            start};
  }

  Token lex_identifier(std::size_t start) {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '.') {
        ++pos_;
      } else {
        break;
      }
    }
    return {TokenKind::Identifier, slice(start), start};
  }

  Token lex_operator(std::size_t start) {
    const char c = text_[pos_++];
    const bool has_eq = pos_ < text_.size() && text_[pos_] == '=';
    if (c == '=' || c == '!') {
      if (!has_eq) throw ParseError("expected '=' after comparison", start);
      ++pos_;
    } else if (has_eq) {
      ++pos_;  // <= or >=
    }
    return {TokenKind::CompareOp, slice(start), start};
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

class Parser {
 public:
  Parser(std::string_view text, AttributeRegistry& attrs)
      : lexer_(text), attrs_(&attrs) {
    advance();
  }

  RawNodePtr parse() {
    RawNodePtr expr = parse_or();
    expect(TokenKind::End, "trailing input after expression");
    return expr;
  }

 private:
  void advance() { current_ = lexer_.next(); }

  [[nodiscard]] bool at_keyword(std::string_view kw) const {
    return current_.kind == TokenKind::Identifier && current_.text == kw;
  }

  void expect(TokenKind kind, const char* message) {
    if (current_.kind != kind) throw ParseError(message, current_.position);
  }

  RawNodePtr parse_or() {
    RawNodePtr left = parse_and();
    if (!at_keyword("or")) return left;
    auto node = std::make_unique<RawNode>();
    node->kind = ast::NodeKind::Or;
    node->children.push_back(std::move(left));
    while (at_keyword("or")) {
      advance();
      node->children.push_back(parse_and());
    }
    return node;
  }

  RawNodePtr parse_and() {
    RawNodePtr left = parse_unary();
    if (!at_keyword("and")) return left;
    auto node = std::make_unique<RawNode>();
    node->kind = ast::NodeKind::And;
    node->children.push_back(std::move(left));
    while (at_keyword("and")) {
      advance();
      node->children.push_back(parse_unary());
    }
    return node;
  }

  RawNodePtr parse_unary() {
    if (at_keyword("not")) {
      advance();
      auto node = std::make_unique<RawNode>();
      node->kind = ast::NodeKind::Not;
      node->children.push_back(parse_unary());
      return node;
    }
    if (current_.kind == TokenKind::LParen) {
      advance();
      RawNodePtr inner = parse_or();
      expect(TokenKind::RParen, "expected ')'");
      advance();
      return inner;
    }
    return parse_predicate();
  }

  RawNodePtr parse_predicate() {
    expect(TokenKind::Identifier, "expected attribute name");
    if (at_keyword("and") || at_keyword("or") || at_keyword("not") ||
        at_keyword("true") || at_keyword("false")) {
      throw ParseError("keyword used as attribute name", current_.position);
    }
    const AttributeId attr = attrs_->intern(current_.text);
    advance();

    Predicate p;
    p.attribute = attr;
    if (current_.kind == TokenKind::CompareOp) {
      p.op = compare_op(current_.text);
      advance();
      p.lo = parse_value();
    } else if (at_keyword("between")) {
      advance();
      p.op = Operator::Between;
      p.lo = parse_value();
      if (!at_keyword("and")) {
        throw ParseError("expected 'and' in between-predicate",
                         current_.position);
      }
      advance();
      p.hi = parse_value();
    } else if (at_keyword("prefix") || at_keyword("suffix") ||
               at_keyword("contains")) {
      p.op = at_keyword("prefix")   ? Operator::Prefix
             : at_keyword("suffix") ? Operator::Suffix
                                    : Operator::Contains;
      advance();
      if (current_.kind != TokenKind::String) {
        throw ParseError("string operators require a quoted operand",
                         current_.position);
      }
      p.lo = parse_value();
    } else if (at_keyword("exists")) {
      advance();
      p.op = Operator::Exists;
    } else {
      throw ParseError("expected operator after attribute name",
                       current_.position);
    }

    auto node = std::make_unique<RawNode>();
    node->kind = ast::NodeKind::Leaf;
    node->predicate = std::move(p);
    return node;
  }

  static Operator compare_op(std::string_view text) {
    if (text == "==") return Operator::Eq;
    if (text == "!=") return Operator::Ne;
    if (text == "<") return Operator::Lt;
    if (text == "<=") return Operator::Le;
    if (text == ">") return Operator::Gt;
    NCPS_ASSERT(text == ">=");
    return Operator::Ge;
  }

  Value parse_value() {
    const Token token = current_;
    switch (token.kind) {
      case TokenKind::Integer: {
        std::int64_t v = 0;
        const auto [ptr, ec] = std::from_chars(
            token.text.data(), token.text.data() + token.text.size(), v);
        if (ec != std::errc{} || ptr != token.text.data() + token.text.size()) {
          throw ParseError("malformed integer literal", token.position);
        }
        advance();
        return Value(v);
      }
      case TokenKind::Float: {
        double v = 0;
        const auto [ptr, ec] = std::from_chars(
            token.text.data(), token.text.data() + token.text.size(), v);
        if (ec != std::errc{} || ptr != token.text.data() + token.text.size()) {
          throw ParseError("malformed float literal", token.position);
        }
        advance();
        return Value(v);
      }
      case TokenKind::String: {
        std::string_view body = token.text;
        body.remove_prefix(1);
        body.remove_suffix(1);
        advance();
        return Value(body);
      }
      case TokenKind::Identifier:
        if (token.text == "true" || token.text == "false") {
          advance();
          return Value(token.text == "true");
        }
        [[fallthrough]];
      default:
        throw ParseError("expected value literal", token.position);
    }
  }

  Lexer lexer_;
  AttributeRegistry* attrs_;
  Token current_;
};

ast::NodePtr intern_node(const RawNode& raw, PredicateTable& table) {
  if (raw.kind == ast::NodeKind::Leaf) {
    return ast::leaf(table.intern(raw.predicate).id);
  }
  std::vector<ast::NodePtr> children;
  children.reserve(raw.children.size());
  for (const auto& c : raw.children) {
    children.push_back(intern_node(*c, table));
  }
  switch (raw.kind) {
    case ast::NodeKind::And: return ast::make_and(std::move(children));
    case ast::NodeKind::Or: return ast::make_or(std::move(children));
    case ast::NodeKind::Not: return ast::make_not(std::move(children.front()));
    default: NCPS_ASSERT(false && "unreachable");
  }
}

}  // namespace

parser_detail::RawNodePtr parse_raw(std::string_view text,
                                    AttributeRegistry& attrs) {
  Parser parser(text, attrs);
  return parser.parse();
}

ast::Expr intern_tree(const parser_detail::RawNode& raw,
                      PredicateTable& table) {
  // intern_node takes one table reference per leaf via intern(); the Expr
  // adopts those references.
  ast::NodePtr root = intern_node(raw, table);
  return ast::Expr(std::move(root), table, ast::Expr::AdoptRefs{});
}

ast::Expr parse_subscription(std::string_view text, AttributeRegistry& attrs,
                             PredicateTable& table) {
  const parser_detail::RawNodePtr raw = parse_raw(text, attrs);
  ast::Expr expr = intern_tree(*raw, table);
  // Compact binary chains into n-ary nodes, as the paper's trees do. The
  // flatten mutates the tree shape only; leaf multiset (and thus reference
  // counts) is unchanged.
  ast::flatten(expr.mutable_root());
  return expr;
}

}  // namespace ncps
