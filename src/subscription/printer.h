// Rendering subscription trees back to the textual language.
//
// print_expression() produces text that parse_subscription() reparses into a
// structurally identical tree (round-trip property, tested). NOT of a
// complemented operator is printed as `not (...)` of the positive form when
// the operator has no surface syntax (e.g. not-between).
#pragma once

#include <string>

#include "event/schema.h"
#include "predicate/predicate_table.h"
#include "subscription/ast.h"

namespace ncps {

[[nodiscard]] std::string print_expression(const ast::Node& node,
                                           const PredicateTable& table,
                                           const AttributeRegistry& attrs);

}  // namespace ncps
