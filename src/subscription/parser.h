// Textual subscription language.
//
// Grammar (case-sensitive keywords, C-like precedence: not > and > or):
//
//   expr      := or_expr
//   or_expr   := and_expr ( 'or' and_expr )*
//   and_expr  := unary ( 'and' unary )*
//   unary     := 'not' unary | '(' expr ')' | predicate
//   predicate := ident compare_op value
//              | ident 'between' value 'and' value
//              | ident 'prefix' string | ident 'suffix' string
//              | ident 'contains' string
//              | ident 'exists'
//   compare_op:= '==' | '!=' | '<' | '<=' | '>' | '>='
//   value     := integer | float | '"' chars '"' | 'true' | 'false'
//
// Example (the paper's Fig. 1):
//   (a > 10 or a <= 5 or b == 1) and (c <= 20 or c == 30 or d == 5)
//
// Parsing is two-phase for exception safety: the text is first parsed into a
// raw tree holding predicates by value (no table side effects besides
// attribute-name interning), and only a successful parse is interned into a
// reference-counted ast::Expr.
#pragma once

#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "event/schema.h"
#include "predicate/predicate.h"
#include "subscription/ast.h"

namespace ncps {

/// Raised on malformed subscription text; carries position information.
class ParseError : public std::runtime_error {
 public:
  ParseError(const std::string& message, std::size_t position)
      : std::runtime_error(message + " (at offset " +
                           std::to_string(position) + ")"),
        position_(position) {}

  [[nodiscard]] std::size_t position() const { return position_; }

 private:
  std::size_t position_;
};

namespace parser_detail {

struct RawNode;
using RawNodePtr = std::unique_ptr<RawNode>;

struct RawNode {
  ast::NodeKind kind = ast::NodeKind::Leaf;
  Predicate predicate;  // Leaf only
  std::vector<RawNodePtr> children;
};

}  // namespace parser_detail

/// Parse subscription text into a raw tree. Interns attribute names (an
/// idempotent, failure-safe side effect) but touches no predicate table.
[[nodiscard]] parser_detail::RawNodePtr parse_raw(std::string_view text,
                                                  AttributeRegistry& attrs);

/// Intern a raw tree's predicates and wrap the result in an RAII Expr.
[[nodiscard]] ast::Expr intern_tree(const parser_detail::RawNode& raw,
                                    PredicateTable& table);

/// Convenience: parse + intern + flatten in one call.
[[nodiscard]] ast::Expr parse_subscription(std::string_view text,
                                           AttributeRegistry& attrs,
                                           PredicateTable& table);

}  // namespace ncps
