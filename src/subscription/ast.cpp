#include "subscription/ast.h"

namespace ncps::ast {

NodePtr leaf(PredicateId id) {
  NCPS_EXPECTS(id.valid());
  auto n = std::make_unique<Node>();
  n->kind = NodeKind::Leaf;
  n->pred = id;
  return n;
}

NodePtr make_and(std::vector<NodePtr> children) {
  NCPS_EXPECTS(!children.empty());
  auto n = std::make_unique<Node>();
  n->kind = NodeKind::And;
  n->children = std::move(children);
  return n;
}

NodePtr make_or(std::vector<NodePtr> children) {
  NCPS_EXPECTS(!children.empty());
  auto n = std::make_unique<Node>();
  n->kind = NodeKind::Or;
  n->children = std::move(children);
  return n;
}

NodePtr make_not(NodePtr child) {
  NCPS_EXPECTS(child != nullptr);
  auto n = std::make_unique<Node>();
  n->kind = NodeKind::Not;
  n->children.push_back(std::move(child));
  return n;
}

NodePtr clone(const Node& node) {
  auto n = std::make_unique<Node>();
  n->kind = node.kind;
  n->pred = node.pred;
  n->children.reserve(node.children.size());
  for (const auto& c : node.children) n->children.push_back(clone(*c));
  return n;
}

NodePtr clone_commuted(const Node& node, Pcg32& rng) {
  auto n = std::make_unique<Node>();
  n->kind = node.kind;
  n->pred = node.pred;
  n->children.reserve(node.children.size());
  for (const auto& c : node.children) {
    n->children.push_back(clone_commuted(*c, rng));
  }
  if (node.kind == NodeKind::And || node.kind == NodeKind::Or) {
    for (std::size_t i = n->children.size(); i > 1; --i) {
      const std::size_t j = rng.bounded(static_cast<std::uint32_t>(i));
      std::swap(n->children[i - 1], n->children[j]);
    }
  }
  return n;
}

bool equal(const Node& a, const Node& b) {
  if (a.kind != b.kind) return false;
  if (a.kind == NodeKind::Leaf) return a.pred == b.pred;
  if (a.children.size() != b.children.size()) return false;
  for (std::size_t i = 0; i < a.children.size(); ++i) {
    if (!equal(*a.children[i], *b.children[i])) return false;
  }
  return true;
}

void flatten(Node& node) {
  if (node.kind == NodeKind::Leaf) return;
  for (auto& c : node.children) flatten(*c);

  if (node.kind == NodeKind::Not) {
    Node& child = *node.children.front();
    if (child.kind == NodeKind::Not) {
      // Not(Not(x)) => x: splice the grandchild into this node.
      NodePtr grandchild = std::move(child.children.front());
      Node moved = std::move(*grandchild);
      *static_cast<Node*>(&node) = std::move(moved);
    }
    return;
  }

  // And/Or: merge children of the same kind, then unwrap singletons.
  std::vector<NodePtr> merged;
  merged.reserve(node.children.size());
  for (auto& c : node.children) {
    if (c->kind == node.kind) {
      for (auto& gc : c->children) merged.push_back(std::move(gc));
    } else {
      merged.push_back(std::move(c));
    }
  }
  node.children = std::move(merged);
  if (node.children.size() == 1) {
    NodePtr only = std::move(node.children.front());
    *static_cast<Node*>(&node) = std::move(*only);
  }
}

std::size_t leaf_count(const Node& node) {
  if (node.kind == NodeKind::Leaf) return 1;
  std::size_t sum = 0;
  for (const auto& c : node.children) sum += leaf_count(*c);
  return sum;
}

std::size_t node_count(const Node& node) {
  std::size_t sum = 1;
  for (const auto& c : node.children) sum += node_count(*c);
  return sum;
}

std::size_t depth(const Node& node) {
  std::size_t max_child = 0;
  for (const auto& c : node.children) {
    max_child = std::max(max_child, depth(*c));
  }
  return 1 + max_child;
}

void collect_predicates(const Node& node, std::vector<PredicateId>& out) {
  if (node.kind == NodeKind::Leaf) {
    out.push_back(node.pred);
    return;
  }
  for (const auto& c : node.children) collect_predicates(*c, out);
}

bool evaluate_against_event(const Node& node, const PredicateTable& table,
                            const Event& event) {
  return evaluate(node, [&](PredicateId id) {
    return table.get(id).eval(event);
  });
}

bool matches_all_false(const Node& node) {
  return evaluate(node, [](PredicateId) { return false; });
}

// ---- Expr ----

Expr::Expr(NodePtr root, PredicateTable& table, AdoptRefs)
    : root_(std::move(root)), table_(&table) {
  NCPS_EXPECTS(root_ != nullptr);
}

Expr::Expr(NodePtr root, PredicateTable& table, AddRefs)
    : root_(std::move(root)), table_(&table) {
  NCPS_EXPECTS(root_ != nullptr);
  std::vector<PredicateId> preds;
  collect_predicates(*root_, preds);
  for (PredicateId id : preds) table.add_ref(id);
}

Expr::~Expr() { release_refs(); }

Expr::Expr(Expr&& other) noexcept
    : root_(std::move(other.root_)), table_(other.table_) {
  other.table_ = nullptr;
}

Expr& Expr::operator=(Expr&& other) noexcept {
  if (this != &other) {
    release_refs();
    root_ = std::move(other.root_);
    table_ = other.table_;
    other.table_ = nullptr;
  }
  return *this;
}

void Expr::release_refs() noexcept {
  if (root_ == nullptr || table_ == nullptr) return;
  std::vector<PredicateId> preds;
  collect_predicates(*root_, preds);
  for (PredicateId id : preds) table_->release(id);
  root_.reset();
  table_ = nullptr;
}

Expr Expr::clone() const {
  NCPS_EXPECTS(root_ != nullptr && table_ != nullptr);
  return Expr(ast::clone(*root_), *table_, AddRefs{});
}

}  // namespace ncps::ast
