// Shared-subexpression forest: hash-consed subscription DAG storage.
//
// The paper keeps every subscription in its non-canonical form, which has a
// consequence §3 never exploits: structurally identical subtrees of
// *different* subscriptions survive verbatim instead of being smeared across
// DNF conjunctions. This module interns every AST subtree — leaves already
// dedupe through PredicateTable; identity is extended here to interior
// AND/OR/NOT nodes — into one refcounted DAG with stable NodeIds, so N
// subscriptions sharing a subtree store it once and (with memoized phase-2
// evaluation, see NonCanonicalEngine) evaluate it once per event.
//
// Node identity is *structural* and, by default, *order-preserving*:
// AND(a, b) and AND(b, a) are distinct nodes (the subscription is kept
// exactly as written; commutative normalisation is left to the engine's
// optional covering-based root subsumption). Two subtrees intern to the
// same NodeId iff they have the same kind, the same predicate (leaves) and
// the same child NodeId sequence (interior nodes).
//
// An opt-in normalisation ladder (Normalisation, fixed at construction)
// extends identity one rung: at SortedChildren, AND/OR children are
// interned under a canonical order (structural hash, ties broken by node
// id), so commuted forms — AND(a, b) vs AND(b, a) — collapse to one node.
// Because Boolean connectives over side-effect-free predicates are
// commutative, matching semantics are untouched; what *is* observable is
// the as-written shape (introspection, covering probes, re-export), so
// intern() can record a per-root *evaluation permutation* — for every
// AND/OR node in pre-order of the written expression, the mapping from
// written child position to stored (sorted) child index — and
// to_ast(id, permutation) reconstructs the expression exactly as written
// (DESIGN.md §1e).
//
// Storage is arena-backed and index-based: a dense Meta array (16 bytes per
// node), one shared child-id arena, an intrusive hash table (bucket heads +
// per-node chain links), and parent back-edges (first parent inline in the
// Meta, the rare extra parents of multi-shared nodes in a side table). The
// parent edges are what lets a fulfilled predicate seed its DAG *ancestors*
// during matching rather than re-walking every subscription.
//
// Lifecycle: intern() returns a root holding one caller-owned reference;
// every interior node owns one reference per child occurrence. release()
// drops a reference and, at zero, unlinks the node and cascades to its
// children. Fully released node slots are *quarantined*, not reused
// immediately: a slot only returns to the free list via
// reclaim_quarantine() — the engines call it around add()/remove(), so
// within one control command a released NodeId is never re-interned as a
// different subtree. How the quarantine empties depends on
// set_reclaim_domain():
//   - with an epoch domain attached (the sharded broker's concurrent-reader
//     regime), reclaim_quarantine() *retires* the batch to the domain, and
//     the slots reach the free list only once no reader pins an epoch from
//     before the release — the grace period. Slot reuse is thereby ordered
//     after every read-side section that could have held the node, by the
//     domain itself rather than by command ordering;
//   - without one (standalone engines, the seed broker), slots move to the
//     free list immediately — the legacy quarantine-until-next-add
//     behaviour, correct because matching and mutation are then strictly
//     serialised.
// The broker-level quarantine of retired global ids (sharded_broker.h)
// additionally fences match records that outlive the removal.
//
// Limits: child count <= 32767 per node, tree depth <= 4095 (both far above
// the paper's 256-predicate assumption); validate_limits() checks them
// without mutating anything, so brokers can pre-validate deferred commands.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <stdexcept>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/contracts.h"
#include "common/ids.h"
#include "common/memory_tracker.h"
#include "subscription/ast.h"

namespace ncps {

class EpochDomain;

namespace storage {
class Writer;
class Reader;
}  // namespace storage

/// Thrown when an expression exceeds the forest's encoding limits.
class ForestLimitError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// How aggressively the forest canonicalises structure before interning.
/// Fixed per forest at construction so node identity is uniform.
enum class Normalisation : std::uint8_t {
  /// Order-preserving identity: children intern exactly as written.
  None,
  /// AND/OR children intern under a canonical sort (structural hash, ties
  /// broken by node id): commuted conjunctions/disjunctions share one node.
  /// The written order survives in the per-root evaluation permutation
  /// intern() hands back.
  SortedChildren,
};

[[nodiscard]] constexpr std::string_view to_string(Normalisation n) {
  switch (n) {
    case Normalisation::None: return "none";
    case Normalisation::SortedChildren: return "sorted";
  }
  return "?";
}

class SharedForest {
 public:
  using NodeId = std::uint32_t;
  static constexpr NodeId kNoNode = 0xffffffffu;
  static constexpr std::size_t kMaxChildren = 32767;  // 15-bit child count
  static constexpr std::size_t kMaxDepth = 4095;      // 12-bit rank

  /// Leaf lifecycle hooks: the owning engine acquires/releases its
  /// predicate-table references (and phase-1 index registration) exactly
  /// when a leaf node is created/destroyed — one reference per *distinct*
  /// live predicate, however many subscriptions share it.
  using LeafHook = std::function<void(PredicateId)>;

  SharedForest() = default;
  explicit SharedForest(Normalisation normalisation)
      : normalisation_(normalisation) {}
  SharedForest(LeafHook on_leaf_created, LeafHook on_leaf_released,
               Normalisation normalisation = Normalisation::None)
      : on_leaf_created_(std::move(on_leaf_created)),
        on_leaf_released_(std::move(on_leaf_released)),
        normalisation_(normalisation) {}

  [[nodiscard]] Normalisation normalisation() const { return normalisation_; }

  // NodeIds index dense side tables in the owning engine; the forest is
  // not copyable (hooks + identity).
  SharedForest(const SharedForest&) = delete;
  SharedForest& operator=(const SharedForest&) = delete;

  struct InternResult {
    NodeId id = kNoNode;
    bool created = false;  ///< false: structurally identical root existed
  };

  /// Intern `expression` bottom-up; returns the root with one caller-owned
  /// reference. Throws ForestLimitError on limit violations (checked before
  /// any mutation).
  ///
  /// Under Normalisation::SortedChildren, a non-null `permutation` receives
  /// the root's evaluation permutation: for each AND/OR node in pre-order
  /// of the *written* expression, child_count entries mapping written child
  /// position -> stored (sorted) child index. to_ast(id, permutation)
  /// reconstructs the expression exactly as written. Under None nothing is
  /// recorded (stored order already is the written order).
  InternResult intern(const ast::Node& expression,
                      std::vector<std::uint32_t>* permutation = nullptr);

  void add_ref(NodeId id) {
    NCPS_DASSERT(id < metas_.size() && metas_[id].refs > 0);
    ++metas_[id].refs;
  }

  /// Drop one reference; at zero the node is unlinked, child references are
  /// released recursively, and the slot is quarantined for reuse after the
  /// next reclaim_quarantine().
  void release(NodeId id);

  /// Throw exactly what intern() would throw for `expression`, touching
  /// nothing.
  static void validate_limits(const ast::Node& expression);

  // ---- node accessors (id must be live) ----

  [[nodiscard]] ast::NodeKind kind(NodeId id) const {
    return static_cast<ast::NodeKind>((metas_[id].packed >> 27) & 0x3u);
  }
  [[nodiscard]] PredicateId leaf_predicate(NodeId id) const {
    NCPS_DASSERT(kind(id) == ast::NodeKind::Leaf);
    return PredicateId(metas_[id].data);
  }
  [[nodiscard]] std::span<const NodeId> children(NodeId id) const {
    const Meta& m = metas_[id];
    return {child_arena_.data() + m.data, child_count(id)};
  }
  [[nodiscard]] std::size_t child_count(NodeId id) const {
    return metas_[id].packed & 0x7fffu;
  }
  /// The node's truth value when *no* predicate is fulfilled — the value of
  /// every subtree the matching frontier never reaches (it contains no
  /// fulfilled leaf, so all its leaves are false).
  [[nodiscard]] bool static_truth(NodeId id) const {
    return (metas_[id].packed >> 29) & 0x1u;
  }
  /// Height of the node (leaves are 0); children always have strictly
  /// smaller rank, so sorting a frontier by rank is a topological order.
  [[nodiscard]] std::uint32_t rank(NodeId id) const {
    return (metas_[id].packed >> 15) & 0xfffu;
  }
  [[nodiscard]] std::uint32_t ref_count(NodeId id) const {
    return metas_[id].refs;
  }
  [[nodiscard]] bool is_live(NodeId id) const {
    return id < metas_.size() && metas_[id].refs > 0;
  }
  /// True iff some interior node holds this node as a child — i.e. its
  /// memoized truth can be consumed by an upward evaluation.
  [[nodiscard]] bool has_parents(NodeId id) const {
    return metas_[id].parent0 != kNoNode;
  }

  /// The leaf node for a predicate, or kNoNode.
  [[nodiscard]] NodeId leaf_of(PredicateId pred) const {
    return pred.value() < leaf_by_pred_.size() ? leaf_by_pred_[pred.value()]
                                               : kNoNode;
  }

  /// Invoke fn(parent NodeId) for every parent edge (with multiplicity:
  /// a node appearing twice under one parent reports that parent twice).
  template <typename Fn>
  void for_each_parent(NodeId id, Fn&& fn) const {
    const Meta& m = metas_[id];
    if (m.parent0 == kNoNode) return;
    fn(m.parent0);
    if ((m.packed >> 30) & 0x1u) {  // has extra parents
      for (const NodeId p : extra_parents_.at(id)) fn(p);
    }
  }

  /// Rebuild the subtree as a raw AST (no predicate-table references), in
  /// stored child order.
  [[nodiscard]] ast::NodePtr to_ast(NodeId id) const;

  /// Rebuild the subtree exactly as written, undoing SortedChildren
  /// interning through the evaluation permutation intern() recorded for
  /// this root. An empty permutation degrades to stored order (correct for
  /// Normalisation::None, where stored order *is* the written order).
  [[nodiscard]] ast::NodePtr to_ast(
      NodeId id, std::span<const std::uint32_t> permutation) const;

  // ---- sizing / lifecycle ----

  [[nodiscard]] std::size_t live_nodes() const { return live_count_; }
  /// One past the largest NodeId ever allocated — dense-array bound.
  [[nodiscard]] std::size_t node_bound() const { return metas_.size(); }
  [[nodiscard]] std::size_t quarantined_nodes() const {
    return quarantine_.size();
  }

  /// Route quarantined slots through `domain`: reclaim_quarantine() then
  /// retires them (free-list insertion deferred past every pinned reader)
  /// instead of freeing in place. nullptr restores the immediate mode.
  /// The owning engine wires this from on_epoch_domain_changed.
  void set_reclaim_domain(EpochDomain* domain) { reclaim_domain_ = domain; }

  /// Empty the quarantine. Without a reclaim domain, slots move to the free
  /// list now — call only from a context ordered after any matching that
  /// could still walk the released nodes (the engines call it around
  /// add()/remove() under the broker's write gate). With a domain, the
  /// batch is retired and the free-list insertion happens at the first
  /// reclaim pass whose grace period covers the release — safe to call
  /// whenever the caller holds the write side.
  void reclaim_quarantine();

  /// Rewrite the child arena without dead slices, resize the intern table
  /// to the live population and release vector growth slack. NodeIds are
  /// stable across compaction.
  void compact_storage();

  [[nodiscard]] MemoryBreakdown memory() const;

  /// Serialise every live node: (id, refcount, kind, predicate | stored
  /// children). Ranks, static truth, parent edges, the intern table and the
  /// leaf index are all derivable and are NOT stored — load_state()
  /// recomputes them, so a corrupted snapshot cannot smuggle in an
  /// inconsistent derived structure. Call compact_storage() first (the
  /// engines' prepare_snapshot() does) so the quarantine and free lists are
  /// empty and need no encoding.
  void save_state(storage::Writer& w) const;

  /// Rebuild from save_state() bytes into an empty forest. NodeIds survive
  /// verbatim (engine side tables are keyed by them). Leaf hooks are NOT
  /// fired — the loading engine reconstructs its own predicate ownership.
  /// `predicate_bound` bounds leaf predicate ids (the predicate table's
  /// id_bound()). Throws StorageError on any structural violation: dangling
  /// or dead child ids, cycles, depth/width over the forest limits,
  /// duplicate structure (a hash-consing violation), duplicate leaves for
  /// one predicate, or refcounts below the in-DAG parent edge count.
  void load_state(storage::Reader& r, std::size_t predicate_bound);

 private:
  // packed: child_count:15 | rank:12 | kind:2 | static_truth:1 | extra:1
  struct Meta {
    std::uint32_t data = 0;       // leaf: predicate id; interior: child offset
    std::uint32_t refs = 0;
    NodeId parent0 = kNoNode;
    std::uint32_t packed = 0;
  };
  static_assert(sizeof(Meta) == 16);

  static std::uint32_t pack(std::size_t child_count, std::uint32_t rank,
                            ast::NodeKind kind, bool static_truth) {
    return static_cast<std::uint32_t>(child_count) |
           (rank << 15) | (static_cast<std::uint32_t>(kind) << 27) |
           (static_cast<std::uint32_t>(static_truth) << 29);
  }

  NodeId intern_node(const ast::Node& node,
                     std::vector<std::uint32_t>* permutation);
  ast::NodePtr to_ast_permuted(NodeId id,
                               std::span<const std::uint32_t> permutation,
                               std::size_t& cursor) const;
  NodeId new_node();
  std::uint32_t alloc_children(std::size_t count);
  void free_children(std::uint32_t offset, std::size_t count);
  void add_parent(NodeId child, NodeId parent);
  void remove_parent(NodeId child, NodeId parent);

  /// Out-of-line so this header needs only a forward declaration of
  /// EpochDomain (the .cpp includes it).
  void retire_quarantine_batch(EpochDomain& domain, std::vector<NodeId> batch);

  [[nodiscard]] std::uint64_t leaf_hash(PredicateId pred) const;
  [[nodiscard]] std::uint64_t interior_hash(
      ast::NodeKind kind, std::span<const NodeId> kids) const;
  [[nodiscard]] std::uint64_t node_hash(NodeId id) const;
  void bucket_insert(NodeId id, std::uint64_t hash);
  void bucket_remove(NodeId id, std::uint64_t hash);
  void rehash(std::size_t bucket_count);

  LeafHook on_leaf_created_;
  LeafHook on_leaf_released_;
  Normalisation normalisation_ = Normalisation::None;

  std::vector<Meta> metas_;             // node arena, dense by NodeId
  std::vector<NodeId> child_arena_;     // all child-id slices
  std::vector<std::vector<std::uint32_t>> child_free_;  // by slice size
  std::vector<NodeId> leaf_by_pred_;    // predicate id -> leaf node
  // Intern table: intrusive chains (buckets_ heads + next_ links per node).
  std::vector<NodeId> buckets_;         // power-of-two sized
  std::vector<NodeId> next_;            // parallel to metas_
  // Extra parents beyond the inline parent0 (multi-shared nodes only).
  std::unordered_map<NodeId, std::vector<NodeId>> extra_parents_;
  std::vector<NodeId> free_nodes_;      // reusable slots
  std::vector<NodeId> quarantine_;      // released, not yet reusable
  /// Deferred-reclamation target for quarantined slots (see
  /// set_reclaim_domain); not owned. Null = immediate reclaim.
  EpochDomain* reclaim_domain_ = nullptr;
  std::size_t live_count_ = 0;
};

}  // namespace ncps
