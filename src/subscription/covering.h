// Subscription covering (subsumption) for arbitrary Boolean subscriptions.
//
// s1 *covers* s2 when every event matching s2 also matches s1. Brokers use
// covering to keep routing state small: a subscription already covered by an
// installed one adds no reachable interest, so it need not be forwarded
// (Mühl & Fiege, "Supporting Covering and Merging in Content-Based
// Publish/Subscribe Systems" — reference [14] of the paper, which notes that
// canonical approaches make covering awkward "beyond name/value pairs").
//
// The test here is *sound but conservative*: covers() == true guarantees
// semantic covering; false may mean "could not prove it". The procedure:
//
//   1. predicate-level implication: a ⇒ b for same-attribute predicate pairs
//      via interval/string reasoning (x > 10 ⇒ x > 5; prefix "abc" ⇒
//      prefix "ab"; x == 7 ⇒ anything 7 satisfies);
//   2. both subscriptions are canonicalised (NNF + DNF, bounded by
//      DnfOptions); s1 covers s2 if every disjunct of DNF(s2) is covered by
//      some disjunct of DNF(s1), where disjunct c covers disjunct d when
//      every literal of c is implied by some literal of d.
//
// A DNF budget overflow makes the test answer false (never unsound).
#pragma once

#include "predicate/predicate.h"
#include "subscription/ast.h"
#include "subscription/dnf.h"

namespace ncps {

/// Conservative implication: true ⇒ every event satisfying `a` satisfies
/// `b`. Exact for same-attribute numeric interval pairs and the string
/// operator family; false whenever the attributes differ or the relation
/// cannot be established.
[[nodiscard]] bool predicate_implies(const Predicate& a, const Predicate& b);

/// How literal-level implication is established during covers().
enum class ImplicationMode : std::uint8_t {
  /// predicate_implies(): interval/string reasoning over *events*. Sound
  /// for any fulfilled set derived from a real event (phase 1 fulfils
  /// x > 5 whenever it fulfils x > 10), but not for an arbitrary truth
  /// assignment over predicate ids.
  Semantic,
  /// Literal identity only (same interned PredicateId). Strictly weaker,
  /// but the proof then holds for *every* truth assignment, which is what
  /// consumers that gate matching on a covering relation (the engine's
  /// partial-sharing donors) need to stay equivalent even under synthetic
  /// fulfilled sets.
  Propositional,
};

/// Conservative covering test: true ⇒ every event matching `covered` also
/// matches `covering` (ImplicationMode::Semantic), or every truth
/// assignment satisfying `covered` satisfies `covering`
/// (ImplicationMode::Propositional).
[[nodiscard]] bool covers(const ast::Node& covering, const ast::Node& covered,
                          PredicateTable& table, const DnfOptions& options = {},
                          ImplicationMode mode = ImplicationMode::Semantic);

}  // namespace ncps
