// Improved subscription-tree encoding (the paper's §5 future work:
// "experiments with more general subscriptions using an improved encoding").
//
// The §3.3 prototype encoding (encoded_tree.h) spends fixed-width fields:
// 4 bytes per predicate id, 2 bytes per child width, and the paper itself
// calls it "a basic and thus not the most space efficient way". This v2
// encoding replaces every fixed field with LEB128-style varints:
//
//   node   := header …payload
//   header := varint(tag | payload << 2)
//     tag 0 (leaf):  payload = predicate id; no further bytes
//     tag 1 (AND), tag 2 (OR): payload = child count;
//                    then per child: varint(width), child bytes
//     tag 3 (NOT):   payload = 0; then the single child (no width — NOT
//                    cannot skip its child anyway)
//
// Child widths still precede children, so AND/OR short-circuiting skips
// whole subtrees exactly as in v1. On the paper's workload the Fig. 1 tree
// shrinks from 46 bytes to ≈ 24 (small predicate ids), and stays ~40 %
// smaller at million-predicate populations.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/contracts.h"
#include "subscription/ast.h"
#include "subscription/encoded_tree.h"  // EncodeError, ReorderPolicy

namespace ncps {

namespace encoded_v2_detail {

inline constexpr std::uint32_t kTagLeaf = 0;
inline constexpr std::uint32_t kTagAnd = 1;
inline constexpr std::uint32_t kTagOr = 2;
inline constexpr std::uint32_t kTagNot = 3;

inline std::size_t varint_size(std::uint64_t v) {
  std::size_t n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}

inline void write_varint(std::vector<std::byte>& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::byte>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  out.push_back(static_cast<std::byte>(v));
}

inline std::uint64_t read_varint(const std::byte*& p) {
  std::uint64_t v = 0;
  int shift = 0;
  for (;;) {
    const auto b = std::to_integer<std::uint8_t>(*p++);
    v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
    if ((b & 0x80) == 0) return v;
    shift += 7;
    NCPS_DASSERT(shift < 64);
  }
}

template <typename TruthFn>
bool eval_at(const std::byte*& p, TruthFn& truth) {
  const std::uint64_t header = read_varint(p);
  const auto tag = static_cast<std::uint32_t>(header & 0x3);
  const std::uint64_t payload = header >> 2;
  switch (tag) {
    case kTagLeaf:
      return truth(PredicateId(static_cast<std::uint32_t>(payload)));
    case kTagAnd: {
      bool result = true;
      for (std::uint64_t i = 0; i < payload; ++i) {
        const std::uint64_t width = read_varint(p);
        if (result) {
          const std::byte* child = p;
          if (!eval_at(child, truth)) result = false;
        }
        p += width;  // widths make the skip O(1) whether evaluated or not
      }
      return result;
    }
    case kTagOr: {
      bool result = false;
      for (std::uint64_t i = 0; i < payload; ++i) {
        const std::uint64_t width = read_varint(p);
        if (!result) {
          const std::byte* child = p;
          if (eval_at(child, truth)) result = true;
        }
        p += width;
      }
      return result;
    }
    default:
      return !eval_at(p, truth);
  }
}

}  // namespace encoded_v2_detail

/// Encoded v2 size without materialising.
[[nodiscard]] std::size_t encoded_size_v2(const ast::Node& node);

/// Append the v2 encoding of `node` to `out`; returns the encoded width.
std::size_t encode_tree_v2(const ast::Node& node, std::vector<std::byte>& out,
                           ReorderPolicy policy = ReorderPolicy::kNone);

/// Decode a v2 tree back into a raw AST (no table references taken).
[[nodiscard]] ast::NodePtr decode_tree_v2(std::span<const std::byte> bytes);

/// Evaluate a v2-encoded tree with short-circuit subtree skipping.
template <typename TruthFn>
[[nodiscard]] bool evaluate_encoded_v2(std::span<const std::byte> bytes,
                                       TruthFn&& truth) {
  NCPS_EXPECTS(!bytes.empty());
  const std::byte* p = bytes.data();
  return encoded_v2_detail::eval_at(p, truth);
}

}  // namespace ncps
