// Value/Predicate wire codecs shared by snapshot and journal payloads.
//
// Predicates are written with the *writer's* attribute ids; attribute ids
// are registry-assignment order, which a recovering process need not
// reproduce (its registry may have interned other names first). Snapshot
// payloads therefore carry an attribute-name dictionary, and
// read_predicate() remaps every attribute through it.
#pragma once

#include <span>

#include "event/value.h"
#include "predicate/predicate.h"
#include "storage/serializer.h"

namespace ncps::storage {

void write_value(Writer& w, const Value& v);
[[nodiscard]] Value read_value(Reader& r);

void write_predicate(Writer& w, const Predicate& p);
/// `attr_remap` maps the writer's attribute id values to this process's
/// AttributeIds (built by interning the snapshot's attribute dictionary).
/// Throws StorageError on unknown operators or attribute ids outside the
/// dictionary.
[[nodiscard]] Predicate read_predicate(Reader& r,
                                       std::span<const AttributeId> attr_remap);

}  // namespace ncps::storage
