#include "storage/fault_vfs.h"

#include "storage/serializer.h"

namespace ncps::storage {

class FaultFileWriter final : public FileWriter {
 public:
  FaultFileWriter(FaultInjectingVfs* vfs, std::string path)
      : vfs_(vfs), path_(std::move(path)) {}

  void append(std::string_view bytes) override {
    vfs_->writer_append(path_, bytes);
  }

  void sync() override { vfs_->writer_sync(path_); }

 private:
  FaultInjectingVfs* vfs_;
  std::string path_;
};

FaultInjectingVfs::Fate FaultInjectingVfs::boundary() {
  if (crashed_) return Fate::Dead;
  ++op_count_;
  if (crash_at_ != 0 && op_count_ == crash_at_) {
    crashed_ = true;
    return Fate::Crash;
  }
  return Fate::Proceed;
}

std::unique_ptr<FileWriter> FaultInjectingVfs::open_append(
    const std::string& path) {
  const std::lock_guard<std::mutex> lock(mutex_);
  // File creation itself is not a durability boundary here (metadata only);
  // the first append/sync is.
  if (!crashed_) state_.try_emplace(path);
  return std::make_unique<FaultFileWriter>(this, path);
}

std::unique_ptr<FileWriter> FaultInjectingVfs::open_truncate(
    const std::string& path) {
  const std::lock_guard<std::mutex> lock(mutex_);
  switch (boundary()) {
    case Fate::Dead:
      break;
    case Fate::Crash:
      throw SimulatedCrash();
    case Fate::Proceed: {
      FileState& file = state_[path];
      file.durable.clear();
      file.pending.clear();
      break;
    }
  }
  return std::make_unique<FaultFileWriter>(this, path);
}

void FaultInjectingVfs::writer_append(const std::string& path,
                                      std::string_view bytes) {
  const std::lock_guard<std::mutex> lock(mutex_);
  switch (boundary()) {
    case Fate::Dead:
      return;
    case Fate::Crash:
      // The bytes never reached even the volatile buffer.
      throw SimulatedCrash();
    case Fate::Proceed:
      state_[path].pending.append(bytes);
      return;
  }
}

void FaultInjectingVfs::writer_sync(const std::string& path) {
  const std::lock_guard<std::mutex> lock(mutex_);
  switch (boundary()) {
    case Fate::Dead:
      return;
    case Fate::Crash: {
      if (torn_sync_) {
        // Partial writeback: a prefix of the buffer made it to the medium.
        FileState& file = state_[path];
        file.durable.append(file.pending, 0, file.pending.size() / 2);
      }
      throw SimulatedCrash();
    }
    case Fate::Proceed: {
      FileState& file = state_[path];
      file.durable.append(file.pending);
      file.pending.clear();
      return;
    }
  }
}

std::optional<std::string> FaultInjectingVfs::read_file(
    const std::string& path) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = state_.find(path);
  if (it == state_.end()) return std::nullopt;
  return it->second.durable;
}

void FaultInjectingVfs::rename(const std::string& from,
                               const std::string& to) {
  const std::lock_guard<std::mutex> lock(mutex_);
  switch (boundary()) {
    case Fate::Dead:
      return;
    case Fate::Crash:
      throw SimulatedCrash();
    case Fate::Proceed: {
      const auto it = state_.find(from);
      if (it == state_.end()) {
        throw StorageError("rename source missing: " + from);
      }
      // Callers sync before renaming; any stray volatile suffix is lost,
      // never carried across the rename.
      state_[to].durable = std::move(it->second.durable);
      state_[to].pending.clear();
      state_.erase(it);
      return;
    }
  }
}

void FaultInjectingVfs::truncate(const std::string& path,
                                 std::uint64_t size) {
  const std::lock_guard<std::mutex> lock(mutex_);
  switch (boundary()) {
    case Fate::Dead:
      return;
    case Fate::Crash:
      throw SimulatedCrash();
    case Fate::Proceed: {
      const auto it = state_.find(path);
      if (it == state_.end()) {
        throw StorageError("truncate on missing file: " + path);
      }
      if (it->second.durable.size() > size) it->second.durable.resize(size);
      it->second.pending.clear();
      return;
    }
  }
}

void FaultInjectingVfs::remove(const std::string& path) {
  const std::lock_guard<std::mutex> lock(mutex_);
  switch (boundary()) {
    case Fate::Dead:
      return;
    case Fate::Crash:
      throw SimulatedCrash();
    case Fate::Proceed:
      state_.erase(path);
      return;
  }
}

bool FaultInjectingVfs::exists(const std::string& path) {
  const std::lock_guard<std::mutex> lock(mutex_);
  return state_.find(path) != state_.end();
}

void FaultInjectingVfs::crash_at_boundary(std::uint64_t boundary) {
  const std::lock_guard<std::mutex> lock(mutex_);
  crash_at_ = boundary;
}

void FaultInjectingVfs::set_torn_sync(bool torn) {
  const std::lock_guard<std::mutex> lock(mutex_);
  torn_sync_ = torn;
}

std::uint64_t FaultInjectingVfs::boundary_count() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return op_count_;
}

bool FaultInjectingVfs::crashed() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return crashed_;
}

void FaultInjectingVfs::restart() {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [path, file] : state_) file.pending.clear();
  crashed_ = false;
  crash_at_ = 0;
}

std::vector<std::string> FaultInjectingVfs::files() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> names;
  names.reserve(state_.size());
  for (const auto& [path, file] : state_) names.push_back(path);
  return names;
}

std::string FaultInjectingVfs::durable_contents(
    const std::string& path) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = state_.find(path);
  return it == state_.end() ? std::string() : it->second.durable;
}

void FaultInjectingVfs::set_durable_contents(const std::string& path,
                                             std::string bytes) {
  const std::lock_guard<std::mutex> lock(mutex_);
  state_[path].durable = std::move(bytes);
}

}  // namespace ncps::storage
