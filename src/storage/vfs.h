// Virtual filesystem seam for the storage subsystem.
//
// Every byte the broker persists flows through this interface, for one
// reason: durability claims must be *testable*. PosixVfs is the real thing
// (O_APPEND writes, fsync, atomic rename); FaultInjectingVfs (fault_vfs.h)
// is an in-memory twin with an explicit volatile/durable split that can kill
// the process model at any write or fsync boundary. The crash-injection
// suite enumerates those boundaries exhaustively, so the recovery path is
// exercised against every prefix of durable effects the real filesystem
// could have retained.
//
// Contract (what recovery is allowed to assume):
//   - append() buffers; only sync() makes previously appended bytes
//     durable. A crash loses any unsynced suffix, and may retain a torn
//     prefix of the bytes being synced.
//   - rename() over an existing path atomically replaces it (POSIX rename
//     semantics) and is durable once it returns — callers sync file
//     contents *before* renaming (the snapshot temp-file protocol).
//   - read_file() returns the durable contents, nullopt if absent.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

namespace ncps::storage {

class FileWriter {
 public:
  virtual ~FileWriter() = default;

  /// Buffered append at end of file; durable only after sync().
  virtual void append(std::string_view bytes) = 0;

  /// Make everything appended so far durable (fsync).
  virtual void sync() = 0;
};

class Vfs {
 public:
  virtual ~Vfs() = default;

  /// Open for appending, creating the file if absent.
  virtual std::unique_ptr<FileWriter> open_append(const std::string& path) = 0;

  /// Open truncated to zero length, creating if absent.
  virtual std::unique_ptr<FileWriter> open_truncate(
      const std::string& path) = 0;

  /// Durable contents of the file; nullopt if it does not exist.
  virtual std::optional<std::string> read_file(const std::string& path) = 0;

  /// Atomically replace `to` with `from` (both in the same directory).
  virtual void rename(const std::string& from, const std::string& to) = 0;

  /// Shrink the file to `size` bytes (no-op if already smaller). Used to
  /// repair a torn journal tail before appending resumes.
  virtual void truncate(const std::string& path, std::uint64_t size) = 0;

  virtual void remove(const std::string& path) = 0;

  [[nodiscard]] virtual bool exists(const std::string& path) = 0;

  /// mkdir -p. No-op if the directory already exists.
  virtual void create_directories(const std::string& path) = 0;
};

/// Process-wide real-filesystem instance.
[[nodiscard]] Vfs& posix_vfs();

}  // namespace ncps::storage
