#include "storage/vfs.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "storage/serializer.h"

namespace ncps::storage {

namespace {

[[noreturn]] void throw_errno(const std::string& what,
                              const std::string& path) {
  throw StorageError(what + " '" + path + "': " + std::strerror(errno));
}

class PosixFileWriter final : public FileWriter {
 public:
  PosixFileWriter(const std::string& path, bool truncate) : path_(path) {
    const int flags =
        O_WRONLY | O_CREAT | O_APPEND | (truncate ? O_TRUNC : 0);
    fd_ = ::open(path.c_str(), flags, 0644);
    if (fd_ < 0) throw_errno("open", path);
  }

  ~PosixFileWriter() override {
    if (fd_ >= 0) ::close(fd_);
  }

  void append(std::string_view bytes) override {
    const char* p = bytes.data();
    std::size_t left = bytes.size();
    while (left > 0) {
      const ssize_t n = ::write(fd_, p, left);
      if (n < 0) {
        if (errno == EINTR) continue;
        throw_errno("write", path_);
      }
      p += n;
      left -= static_cast<std::size_t>(n);
    }
  }

  void sync() override {
    if (::fsync(fd_) != 0) throw_errno("fsync", path_);
  }

 private:
  std::string path_;
  int fd_ = -1;
};

/// fsync the directory containing `path`, so a just-completed rename (or
/// create) of the entry itself is durable.
void sync_parent_dir(const std::string& path) {
  const std::filesystem::path parent =
      std::filesystem::path(path).parent_path();
  const std::string dir = parent.empty() ? "." : parent.string();
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) throw_errno("open dir", dir);
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) throw_errno("fsync dir", dir);
}

class PosixVfs final : public Vfs {
 public:
  std::unique_ptr<FileWriter> open_append(const std::string& path) override {
    return std::make_unique<PosixFileWriter>(path, /*truncate=*/false);
  }

  std::unique_ptr<FileWriter> open_truncate(const std::string& path) override {
    return std::make_unique<PosixFileWriter>(path, /*truncate=*/true);
  }

  std::optional<std::string> read_file(const std::string& path) override {
    std::ifstream in(path, std::ios::binary);
    if (!in.is_open()) return std::nullopt;
    std::ostringstream contents;
    contents << in.rdbuf();
    if (in.bad()) throw StorageError("read failed for '" + path + "'");
    return std::move(contents).str();
  }

  void rename(const std::string& from, const std::string& to) override {
    if (::rename(from.c_str(), to.c_str()) != 0) throw_errno("rename", from);
    sync_parent_dir(to);
  }

  void truncate(const std::string& path, std::uint64_t size) override {
    struct stat st{};
    if (::stat(path.c_str(), &st) != 0) throw_errno("stat", path);
    if (static_cast<std::uint64_t>(st.st_size) <= size) return;
    if (::truncate(path.c_str(), static_cast<off_t>(size)) != 0) {
      throw_errno("truncate", path);
    }
    // Make the shrink durable before anything is appended after it.
    const int fd = ::open(path.c_str(), O_WRONLY);
    if (fd < 0) throw_errno("open", path);
    const int rc = ::fsync(fd);
    ::close(fd);
    if (rc != 0) throw_errno("fsync", path);
  }

  void remove(const std::string& path) override {
    if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
      throw_errno("unlink", path);
    }
  }

  bool exists(const std::string& path) override {
    struct stat st{};
    return ::stat(path.c_str(), &st) == 0;
  }

  void create_directories(const std::string& path) override {
    std::error_code ec;
    std::filesystem::create_directories(path, ec);
    if (ec) {
      throw StorageError("create_directories '" + path +
                         "': " + ec.message());
    }
  }
};

}  // namespace

Vfs& posix_vfs() {
  static PosixVfs instance;
  return instance;
}

}  // namespace ncps::storage
