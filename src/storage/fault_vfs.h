// Deterministic crash injection for the storage write path.
//
// FaultInjectingVfs is an in-memory filesystem with an explicit
// volatile/durable split per file: append() lands in a volatile buffer,
// sync() promotes it to the durable image — exactly the guarantee contract
// of vfs.h. Every state-changing operation (append, sync, truncating open,
// rename, remove) is a numbered *boundary*; arming crash_at_boundary(k)
// makes the k-th boundary throw SimulatedCrash *instead of* applying,
// after which the instance plays dead: further writes are swallowed
// silently (the process model has exited; C++ unwinding must not throw
// again) until restart() discards all volatile buffers — the reboot — and
// recovery reads the durable image.
//
// A crash at a sync boundary can optionally retain a torn prefix of the
// buffer being synced (set_torn_sync), modelling a partial writeback. The
// crash-injection suite runs each boundary both ways.
//
// The suite's protocol: run the workload once unarmed and read
// boundary_count(); then for k = 1..count, re-run on a fresh instance armed
// at k, restart(), recover, and compare against a never-crashed reference.
#pragma once

#include <cstdint>
#include <exception>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "storage/vfs.h"

namespace ncps::storage {

/// Thrown at the armed boundary: models the process dying mid-write. Not a
/// StorageError — recovery code must never catch it as routine corruption.
class SimulatedCrash : public std::exception {
 public:
  [[nodiscard]] const char* what() const noexcept override {
    return "simulated crash at injected write/fsync boundary";
  }
};

class FaultInjectingVfs final : public Vfs {
 public:
  std::unique_ptr<FileWriter> open_append(const std::string& path) override;
  std::unique_ptr<FileWriter> open_truncate(const std::string& path) override;
  std::optional<std::string> read_file(const std::string& path) override;
  void rename(const std::string& from, const std::string& to) override;
  void truncate(const std::string& path, std::uint64_t size) override;
  void remove(const std::string& path) override;
  [[nodiscard]] bool exists(const std::string& path) override;
  void create_directories(const std::string& /*path*/) override {}

  /// Arm the k-th (1-based) state-changing operation to crash; 0 disarms.
  void crash_at_boundary(std::uint64_t boundary);

  /// When armed and the crash lands on a sync(), make the first half of the
  /// volatile buffer durable anyway — a torn write.
  void set_torn_sync(bool torn);

  /// State-changing operations observed so far (including the crashed one).
  [[nodiscard]] std::uint64_t boundary_count() const;

  [[nodiscard]] bool crashed() const;

  /// Reboot: drop every volatile buffer, keep the durable image, disarm,
  /// and accept operations again.
  void restart();

  // ---- test introspection / corruption hooks ----

  /// Durable file names, sorted.
  [[nodiscard]] std::vector<std::string> files() const;
  /// Durable contents ("" if absent).
  [[nodiscard]] std::string durable_contents(const std::string& path) const;
  /// Overwrite the durable image directly (corruption-fuzz mutations).
  void set_durable_contents(const std::string& path, std::string bytes);

 private:
  friend class FaultFileWriter;

  struct FileState {
    std::string durable;
    std::string pending;  // appended, not yet synced
  };

  enum class Fate { Dead, Proceed, Crash };

  void writer_append(const std::string& path, std::string_view bytes);
  void writer_sync(const std::string& path);

  /// Count one boundary. Dead: instance already crashed, caller no-ops.
  /// Crash: this is the armed boundary — caller applies its crash-specific
  /// partial effect (if any) and throws SimulatedCrash.
  [[nodiscard]] Fate boundary();

  mutable std::mutex mutex_;
  std::map<std::string, FileState> state_;
  std::uint64_t op_count_ = 0;
  std::uint64_t crash_at_ = 0;
  bool torn_sync_ = false;
  bool crashed_ = false;
};

}  // namespace ncps::storage
