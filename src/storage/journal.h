// CommandJournal: the control-plane write-ahead log.
//
// Between snapshots, every state-changing control operation (register/
// unregister subscriber, subscribe, unsubscribe, bulk-subscribe) is framed
// into the journal and committed *before* it is applied in memory — the
// WAL rule. A bulk subscribe is one record however many subscriptions it
// carries, so its framing and its fsync are paid once per control call
// (group commit); StorageOptions::sync_on_commit can relax the fsync for
// throughput at the cost of losing the newest acknowledged operations in a
// crash (never consistency: recovery still sees a clean record prefix).
//
// File layout: 8-byte magic, then records framed as
//
//   [u32 payload_len][u32 crc32(payload)][payload]
//
// where payload = varint seq, u8 type, type-specific fields (codec.h for
// values). Sequence numbers are broker-assigned, strictly increasing across
// the journal's life; the snapshot stores the last sequence it covers, and
// recovery replays only records above it — that makes replay idempotent
// when a crash lands between the snapshot rename and the journal
// truncation (both prefixes of effects are valid recovery inputs).
//
// Torn-tail policy (DESIGN.md §6): a final record that fails its length or
// CRC check is an interrupted append — replay stops at the last valid
// record and reports the clean-prefix length, and the broker truncates the
// garbage before appending resumes. A CRC-valid record whose sequence
// number regresses is structural corruption and a hard StorageError.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "storage/vfs.h"

namespace ncps::storage {

struct JournalRecord {
  enum class Type : std::uint8_t {
    RegisterSubscriber = 1,
    UnregisterSubscriber = 2,
    Subscribe = 3,
    Unsubscribe = 4,
    BulkSubscribe = 5,
  };

  struct BulkItem {
    std::uint32_t global = 0;
    std::string text;
  };

  std::uint64_t seq = 0;
  Type type = Type::Subscribe;
  std::uint32_t subscriber = 0;  // Register/Unregister/Subscribe/Bulk
  std::uint32_t global = 0;      // Subscribe/Unsubscribe
  std::string text;              // Subscribe
  std::vector<BulkItem> bulk;    // BulkSubscribe
};

class CommandJournal {
 public:
  /// Does not touch the file; call open_for_append() (after replay decides
  /// the valid prefix) before the first append.
  CommandJournal(Vfs& vfs, std::string path, bool sync_on_commit);

  CommandJournal(const CommandJournal&) = delete;
  CommandJournal& operator=(const CommandJournal&) = delete;

  struct ReplayResult {
    std::vector<JournalRecord> records;
    /// Bytes of the valid prefix (magic + intact records); anything beyond
    /// is a torn tail.
    std::uint64_t valid_bytes = 0;
    bool torn_tail = false;
    std::uint64_t max_seq = 0;
  };

  /// Parse the durable journal. Missing file or empty/torn header replays
  /// as empty. Throws StorageError only on structural corruption (sequence
  /// regression, oversized frame mid-file) — never on a torn tail.
  [[nodiscard]] static ReplayResult replay(Vfs& vfs, const std::string& path);

  /// Position the journal for appending: truncate away a torn tail (from
  /// replay's valid_bytes), create the file + magic if absent or empty.
  void open_for_append(const ReplayResult& replayed);

  /// Frame a record into the commit buffer (no I/O).
  void append(const JournalRecord& record);

  /// Write the buffered frames and (by policy) fsync — one write + one
  /// fsync per control operation however many records it appended.
  void commit();

  /// After a snapshot made every journaled effect redundant: restart the
  /// file as magic-only. The snapshot file must already be durable.
  void reset();

  [[nodiscard]] std::uint64_t appended_bytes() const {
    return appended_bytes_;
  }

  /// Payload bytes of the most recent commit() (0 before the first); the
  /// broker's telemetry scrapes this right after journal_commit_locked.
  [[nodiscard]] std::uint64_t last_commit_bytes() const {
    return last_commit_bytes_;
  }
  /// Nanoseconds the most recent commit() spent in fsync (0 when
  /// sync_on_commit is off or metrics are compiled out).
  [[nodiscard]] std::uint64_t last_sync_ns() const { return last_sync_ns_; }

 private:
  void ensure_writer();

  Vfs* vfs_;
  std::string path_;
  bool sync_on_commit_;
  std::unique_ptr<FileWriter> writer_;
  std::string pending_;
  std::uint64_t appended_bytes_ = 0;  // since construction; monitoring only
  std::uint64_t last_commit_bytes_ = 0;
  std::uint64_t last_sync_ns_ = 0;
};

}  // namespace ncps::storage
