#include "storage/snapshot.h"

#include "common/checksum.h"
#include "storage/serializer.h"

namespace ncps::storage {

namespace {

constexpr std::string_view kSnapshotMagic = "NCPSSNP1";
constexpr std::uint32_t kSnapshotVersion = 1;

}  // namespace

std::string snapshot_path(const std::string& directory) {
  return directory + "/snapshot.ncps";
}

std::string snapshot_tmp_path(const std::string& directory) {
  return directory + "/snapshot.tmp";
}

std::string journal_path(const std::string& directory) {
  return directory + "/journal.wal";
}

void write_snapshot_file(Vfs& vfs, const std::string& directory,
                         const std::string& payload) {
  Writer header;
  header.raw(kSnapshotMagic.data(), kSnapshotMagic.size());
  header.u32(kSnapshotVersion);
  header.u32(crc32(payload));
  header.u64(payload.size());

  const std::string tmp = snapshot_tmp_path(directory);
  const auto writer = vfs.open_truncate(tmp);
  writer->append(header.bytes());
  writer->append(payload);
  writer->sync();
  vfs.rename(tmp, snapshot_path(directory));
}

std::optional<std::string> read_snapshot_payload(Vfs& vfs,
                                                 const std::string& directory) {
  const std::optional<std::string> contents =
      vfs.read_file(snapshot_path(directory));
  if (!contents.has_value()) return std::nullopt;
  Reader reader{std::string_view(*contents)};
  if (reader.remaining() < kSnapshotMagic.size() + 16) {
    throw StorageError("snapshot file too short");
  }
  if (reader.view(kSnapshotMagic.size()) != kSnapshotMagic) {
    throw StorageError("snapshot magic mismatch");
  }
  const std::uint32_t version = reader.u32();
  if (version != kSnapshotVersion) {
    throw StorageError("unsupported snapshot version " +
                       std::to_string(version));
  }
  const std::uint32_t stored_crc = reader.u32();
  const std::uint64_t len = reader.u64();
  if (len != reader.remaining()) {
    throw StorageError("snapshot length mismatch: header says " +
                       std::to_string(len) + ", file has " +
                       std::to_string(reader.remaining()));
  }
  const std::string_view payload = reader.view(len);
  if (crc32(payload) != stored_crc) {
    throw StorageError("snapshot checksum mismatch");
  }
  return std::string(payload);
}

}  // namespace ncps::storage
