#include "storage/journal.h"

#include <utility>

#include "common/checksum.h"
#include "common/contracts.h"
#include "obs/metrics.h"
#include "storage/serializer.h"

namespace ncps::storage {

namespace {

constexpr std::string_view kJournalMagic = "NCPSJRN1";
constexpr std::uint32_t kMaxRecordBytes = 64u << 20;

void encode_payload(Writer& w, const JournalRecord& record) {
  w.varint(record.seq);
  w.u8(static_cast<std::uint8_t>(record.type));
  switch (record.type) {
    case JournalRecord::Type::RegisterSubscriber:
    case JournalRecord::Type::UnregisterSubscriber:
      w.varint(record.subscriber);
      break;
    case JournalRecord::Type::Subscribe:
      w.varint(record.subscriber);
      w.varint(record.global);
      w.string(record.text);
      break;
    case JournalRecord::Type::Unsubscribe:
      w.varint(record.global);
      break;
    case JournalRecord::Type::BulkSubscribe:
      w.varint(record.subscriber);
      w.varint(record.bulk.size());
      for (const JournalRecord::BulkItem& item : record.bulk) {
        w.varint(item.global);
        w.string(item.text);
      }
      break;
  }
}

JournalRecord decode_payload(Reader& r) {
  JournalRecord record;
  record.seq = r.varint();
  const std::uint8_t type = r.u8();
  if (type < 1 || type > 5) {
    throw StorageError("unknown journal record type " + std::to_string(type));
  }
  record.type = static_cast<JournalRecord::Type>(type);
  constexpr std::uint64_t kMaxId = 0xfffffffeu;  // StrongId range
  switch (record.type) {
    case JournalRecord::Type::RegisterSubscriber:
    case JournalRecord::Type::UnregisterSubscriber:
      record.subscriber = static_cast<std::uint32_t>(
          r.varint_max(kMaxId, "journal subscriber id"));
      break;
    case JournalRecord::Type::Subscribe:
      record.subscriber = static_cast<std::uint32_t>(
          r.varint_max(kMaxId, "journal subscriber id"));
      record.global = static_cast<std::uint32_t>(
          r.varint_max(kMaxId, "journal subscription id"));
      record.text = r.string();
      break;
    case JournalRecord::Type::Unsubscribe:
      record.global = static_cast<std::uint32_t>(
          r.varint_max(kMaxId, "journal subscription id"));
      break;
    case JournalRecord::Type::BulkSubscribe: {
      record.subscriber = static_cast<std::uint32_t>(
          r.varint_max(kMaxId, "journal subscriber id"));
      const std::uint64_t count =
          r.varint_max(r.remaining(), "journal bulk count");
      record.bulk.reserve(count);
      for (std::uint64_t i = 0; i < count; ++i) {
        JournalRecord::BulkItem item;
        item.global = static_cast<std::uint32_t>(
            r.varint_max(kMaxId, "journal subscription id"));
        item.text = r.string();
        record.bulk.push_back(std::move(item));
      }
      break;
    }
  }
  if (!r.done()) {
    throw StorageError("journal record has trailing bytes");
  }
  return record;
}

}  // namespace

CommandJournal::CommandJournal(Vfs& vfs, std::string path, bool sync_on_commit)
    : vfs_(&vfs), path_(std::move(path)), sync_on_commit_(sync_on_commit) {}

CommandJournal::ReplayResult CommandJournal::replay(Vfs& vfs,
                                                    const std::string& path) {
  ReplayResult result;
  const std::optional<std::string> contents = vfs.read_file(path);
  if (!contents.has_value()) return result;
  const std::string& bytes = *contents;
  if (bytes.size() < kJournalMagic.size()) {
    // A crash before the magic was fully durable; there cannot be any
    // record after a partial header, so this is an empty journal.
    result.torn_tail = !bytes.empty();
    return result;
  }
  if (std::string_view(bytes).substr(0, kJournalMagic.size()) !=
      kJournalMagic) {
    throw StorageError("journal magic mismatch: " + path);
  }

  Reader reader{std::string_view(bytes)};
  (void)reader.view(kJournalMagic.size());
  result.valid_bytes = kJournalMagic.size();
  std::uint64_t prev_seq = 0;
  while (!reader.done()) {
    if (reader.remaining() < 8) {
      result.torn_tail = true;
      break;
    }
    const std::uint32_t len = reader.u32();
    const std::uint32_t stored_crc = reader.u32();
    if (len > kMaxRecordBytes || len > reader.remaining()) {
      // Interrupted append: the length prefix or the payload never became
      // fully durable. (A mid-file flip of a length field is
      // indistinguishable from this; the clean-prefix contract covers both
      // — see the header comment.)
      result.torn_tail = true;
      break;
    }
    const std::string_view payload = reader.view(len);
    if (crc32(payload) != stored_crc) {
      result.torn_tail = true;
      break;
    }
    Reader payload_reader{payload};
    JournalRecord record = decode_payload(payload_reader);
    if (record.seq <= prev_seq) {
      // CRC-valid but out of order: this is not a torn append, the file is
      // structurally corrupt. Refuse rather than replay a wrong history.
      throw StorageError("journal sequence regression at record seq " +
                         std::to_string(record.seq));
    }
    prev_seq = record.seq;
    result.max_seq = record.seq;
    result.valid_bytes = reader.position();
    result.records.push_back(std::move(record));
  }
  return result;
}

void CommandJournal::open_for_append(const ReplayResult& replayed) {
  NCPS_EXPECTS(writer_ == nullptr);
  const bool exists = vfs_->exists(path_);
  if (exists && replayed.torn_tail) {
    // Drop the garbage so appended records extend the valid prefix.
    vfs_->truncate(path_, replayed.valid_bytes);
  }
  writer_ = vfs_->open_append(path_);
  if (!exists || replayed.valid_bytes < kJournalMagic.size()) {
    // Brand new (or truncated-to-empty) journal: start with the magic. It
    // rides with the first commit's sync; an unsynced magic lost in a
    // crash leaves an empty file, which replays as empty.
    writer_->append(kJournalMagic);
  }
}

void CommandJournal::ensure_writer() {
  NCPS_EXPECTS(writer_ != nullptr &&
               "open_for_append() must precede appends");
}

void CommandJournal::append(const JournalRecord& record) {
  ensure_writer();
  Writer payload;
  encode_payload(payload, record);
  Writer frame;
  frame.u32(static_cast<std::uint32_t>(payload.size()));
  frame.u32(crc32(payload.bytes()));
  pending_.append(frame.bytes());
  pending_.append(payload.bytes());
}

void CommandJournal::commit() {
  if (pending_.empty()) return;
  ensure_writer();
  writer_->append(pending_);
  appended_bytes_ += pending_.size();
  last_commit_bytes_ = pending_.size();
  pending_.clear();
  last_sync_ns_ = 0;
  if (sync_on_commit_) {
    const std::uint64_t start = obs::now_ticks();
    writer_->sync();
    const std::uint64_t end = obs::now_ticks();
    last_sync_ns_ = end > start ? end - start : 0;
  }
}

void CommandJournal::reset() {
  pending_.clear();
  writer_ = vfs_->open_truncate(path_);
  writer_->append(kJournalMagic);
  writer_->sync();
}

}  // namespace ncps::storage
