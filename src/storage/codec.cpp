#include "storage/codec.h"

#include "predicate/operators.h"

namespace ncps::storage {

void write_value(Writer& w, const Value& v) {
  w.u8(static_cast<std::uint8_t>(v.type()));
  switch (v.type()) {
    case ValueType::Int64:
      w.u64(static_cast<std::uint64_t>(v.as_int()));
      break;
    case ValueType::Float64:
      w.f64(v.as_double());
      break;
    case ValueType::String:
      w.string(v.as_string());
      break;
    case ValueType::Bool:
      w.u8(v.as_bool() ? 1 : 0);
      break;
  }
}

Value read_value(Reader& r) {
  const std::uint8_t tag = r.u8();
  switch (static_cast<ValueType>(tag)) {
    case ValueType::Int64:
      return Value(static_cast<std::int64_t>(r.u64()));
    case ValueType::Float64:
      return Value(r.f64());
    case ValueType::String:
      return Value(r.string());
    case ValueType::Bool:
      return Value(r.u8() != 0);
  }
  throw StorageError("unknown value type tag " + std::to_string(tag));
}

void write_predicate(Writer& w, const Predicate& p) {
  w.varint(p.attribute.value());
  w.u8(static_cast<std::uint8_t>(p.op));
  write_value(w, p.lo);
  if (is_binary_operand(p.op)) write_value(w, p.hi);
}

Predicate read_predicate(Reader& r,
                         std::span<const AttributeId> attr_remap) {
  if (attr_remap.empty()) {
    throw StorageError("predicate but empty attribute dictionary");
  }
  const std::uint64_t attr =
      r.varint_max(attr_remap.size() - 1, "predicate attribute id");
  const std::uint8_t op_raw = r.u8();
  if (op_raw >= kOperatorCount) {
    throw StorageError("unknown operator tag " + std::to_string(op_raw));
  }
  Predicate p;
  p.attribute = attr_remap[attr];
  p.op = static_cast<Operator>(op_raw);
  p.lo = read_value(r);
  if (is_binary_operand(p.op)) p.hi = read_value(r);
  return p;
}

}  // namespace ncps::storage
