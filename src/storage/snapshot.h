// Snapshot file framing and the StorageOptions knob.
//
// A snapshot is one self-contained, versioned, whole-file-checksummed
// image of the broker's control-plane state (ForestSnapshot payloads for
// forest-backed shards, subscription texts for the canonicalising
// engines; the payload grammar lives with the broker in
// broker/broker_persistence.cpp and is documented in DESIGN.md §6).
//
// Atomicity: the payload is staged to `snapshot.tmp`, synced, then renamed
// over `snapshot.ncps` — a reader never observes a half-written snapshot,
// only the old image or the new one. The snapshot–journal handshake:
// the payload records the journal sequence number it covers; recovery
// replays only journal records above it, so a crash anywhere between the
// rename and the journal truncation replays idempotently.
//
// File layout:  magic "NCPSSNP1" | u32 version | u32 crc32(payload) |
//               u64 payload_len | payload
// Any mismatch — magic, version, length, checksum — is a hard
// StorageError: unlike a journal tail, a snapshot has no valid prefix.
#pragma once

#include <optional>
#include <string>

#include "storage/vfs.h"

namespace ncps::storage {

/// Broker persistence knob (ShardedBrokerConfig::storage /
/// BrokerOptions::storage). Default-constructed = disabled: the broker is
/// purely in-memory, byte-for-byte the pre-storage behaviour.
struct StorageOptions {
  bool enabled = false;
  /// Directory for snapshot.ncps + journal.wal; created if absent.
  /// Required when enabled.
  std::string directory;
  /// fsync the journal on every control operation (the durability default).
  /// Off: acknowledged operations may be lost in a crash — recovery still
  /// sees a clean prefix, never a corrupt state.
  bool sync_on_commit = true;
  /// Filesystem seam; null = the real filesystem (posix_vfs()). Tests
  /// inject FaultInjectingVfs here.
  Vfs* vfs = nullptr;
};

[[nodiscard]] std::string snapshot_path(const std::string& directory);
[[nodiscard]] std::string snapshot_tmp_path(const std::string& directory);
[[nodiscard]] std::string journal_path(const std::string& directory);

/// Stage + sync + rename `payload` into place as the current snapshot.
void write_snapshot_file(Vfs& vfs, const std::string& directory,
                         const std::string& payload);

/// The current snapshot's payload; nullopt if no snapshot exists. Throws
/// StorageError on any framing or checksum violation.
[[nodiscard]] std::optional<std::string> read_snapshot_payload(
    Vfs& vfs, const std::string& directory);

}  // namespace ncps::storage
