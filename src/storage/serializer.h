// Byte-level serialisation for snapshot and journal payloads.
//
// Writer appends into a growable byte buffer; Reader walks a byte view with
// hard bounds checks — every read that would step past the end throws
// StorageError. That is the loader's first line of defence: a corrupt or
// truncated file (the corruption-fuzz suite bit-flips and truncates at
// random offsets) must fail with a clean error, never index out of bounds.
// Checksums catch corruption probabilistically; the bounds checks make the
// parser itself total, so even a CRC-colliding mutation cannot crash it.
//
// Encoding conventions (all little-endian):
//   - fixed-width u8/u32/u64 for structure fields read back as arrays;
//   - LEB128 varints for counts and ids (subscription populations are
//     large, their ids are small);
//   - strings/blobs as varint length + raw bytes.
#pragma once

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <string_view>

namespace ncps {

/// Any failure to persist or recover broker state: framing violations,
/// checksum mismatches, version skew, truncated files, out-of-range ids.
/// Recovery either succeeds completely or throws this — it never installs a
/// partially parsed state.
class StorageError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

namespace storage {

class Writer {
 public:
  void u8(std::uint8_t v) { buffer_.push_back(static_cast<char>(v)); }

  void u32(std::uint32_t v) { raw(&v, sizeof v); }

  void u64(std::uint64_t v) { raw(&v, sizeof v); }

  /// Unsigned LEB128.
  void varint(std::uint64_t v) {
    while (v >= 0x80) {
      u8(static_cast<std::uint8_t>(v) | 0x80u);
      v >>= 7;
    }
    u8(static_cast<std::uint8_t>(v));
  }

  void f64(double v) {
    static_assert(sizeof(double) == sizeof(std::uint64_t));
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    u64(bits);
  }

  void string(std::string_view s) {
    varint(s.size());
    raw(s.data(), s.size());
  }

  void raw(const void* data, std::size_t size) {
    buffer_.append(static_cast<const char*>(data), size);
  }

  [[nodiscard]] const std::string& bytes() const { return buffer_; }
  [[nodiscard]] std::size_t size() const { return buffer_.size(); }
  std::string take() { return std::move(buffer_); }

 private:
  std::string buffer_;
};

class Reader {
 public:
  explicit Reader(std::string_view bytes) : bytes_(bytes) {}

  [[nodiscard]] std::uint8_t u8() {
    need(1);
    return static_cast<std::uint8_t>(bytes_[pos_++]);
  }

  [[nodiscard]] std::uint32_t u32() {
    std::uint32_t v;
    need(sizeof v);
    std::memcpy(&v, bytes_.data() + pos_, sizeof v);
    pos_ += sizeof v;
    return v;
  }

  [[nodiscard]] std::uint64_t u64() {
    std::uint64_t v;
    need(sizeof v);
    std::memcpy(&v, bytes_.data() + pos_, sizeof v);
    pos_ += sizeof v;
    return v;
  }

  [[nodiscard]] std::uint64_t varint() {
    std::uint64_t v = 0;
    for (unsigned shift = 0; shift < 64; shift += 7) {
      const std::uint8_t byte = u8();
      v |= static_cast<std::uint64_t>(byte & 0x7fu) << shift;
      if ((byte & 0x80u) == 0) return v;
    }
    throw StorageError("varint longer than 64 bits");
  }

  /// varint() narrowed with an explicit ceiling — loaders bound every
  /// count/id they read so corrupt input cannot drive giant allocations.
  [[nodiscard]] std::uint64_t varint_max(std::uint64_t max,
                                         const char* what) {
    const std::uint64_t v = varint();
    if (v > max) {
      throw StorageError(std::string(what) + " out of range: " +
                         std::to_string(v));
    }
    return v;
  }

  [[nodiscard]] double f64() {
    const std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }

  [[nodiscard]] std::string string() {
    const std::uint64_t size = varint();
    need(size);
    std::string s(bytes_.substr(pos_, size));
    pos_ += size;
    return s;
  }

  [[nodiscard]] std::string_view view(std::size_t size) {
    need(size);
    const std::string_view v = bytes_.substr(pos_, size);
    pos_ += size;
    return v;
  }

  [[nodiscard]] std::size_t remaining() const { return bytes_.size() - pos_; }
  [[nodiscard]] bool done() const { return pos_ == bytes_.size(); }
  [[nodiscard]] std::size_t position() const { return pos_; }

 private:
  void need(std::uint64_t size) const {
    if (size > bytes_.size() - pos_) {
      throw StorageError("truncated payload: need " + std::to_string(size) +
                         " bytes at offset " + std::to_string(pos_));
    }
  }

  std::string_view bytes_;
  std::size_t pos_ = 0;
};

}  // namespace storage
}  // namespace ncps
