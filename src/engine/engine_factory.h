// Uniform construction of the engines the test suites and benchmark
// harness compare: the paper's three algorithms plus the forest-backed
// non-canonical engine's unshared tree baseline.
#pragma once

#include <memory>
#include <string_view>

#include "engine/counting_engine.h"
#include "engine/counting_variant_engine.h"
#include "engine/non_canonical_engine.h"
#include "engine/non_canonical_tree_engine.h"

namespace ncps {

enum class EngineKind : std::uint8_t {
  NonCanonical,      ///< shared-forest DAG engine (the default)
  NonCanonicalTree,  ///< the paper's per-subscription encoded-tree prototype
  Counting,
  CountingVariant,
};

inline constexpr EngineKind kAllEngineKinds[] = {
    EngineKind::NonCanonical,
    EngineKind::NonCanonicalTree,
    EngineKind::Counting,
    EngineKind::CountingVariant,
};

[[nodiscard]] inline std::string_view to_string(EngineKind kind) {
  switch (kind) {
    case EngineKind::NonCanonical: return "non-canonical";
    case EngineKind::NonCanonicalTree: return "non-canonical-tree";
    case EngineKind::Counting: return "counting";
    case EngineKind::CountingVariant: return "counting-variant";
  }
  return "?";
}

/// Construct an engine. `normalisation` is the forest normalisation ladder
/// knob: it selects the shared forest's interning identity for
/// EngineKind::NonCanonical and is a no-op for every other kind (the tree
/// engine stores subscriptions as written; the counting engines
/// canonicalise to DNF regardless) — so a broker config can carry one
/// normalisation setting across its engine choice.
[[nodiscard]] inline std::unique_ptr<FilterEngine> make_engine(
    EngineKind kind, PredicateTable& table,
    Normalisation normalisation = Normalisation::None) {
  switch (kind) {
    case EngineKind::NonCanonical: {
      NonCanonicalEngineOptions options;
      options.normalisation = normalisation;
      return std::make_unique<NonCanonicalEngine>(table, options);
    }
    case EngineKind::NonCanonicalTree:
      return std::make_unique<NonCanonicalTreeEngine>(table);
    case EngineKind::Counting:
      return std::make_unique<CountingEngine>(table);
    case EngineKind::CountingVariant:
      return std::make_unique<CountingVariantEngine>(table);
  }
  return nullptr;
}

}  // namespace ncps
