// Shared machinery of the two counting baselines (paper §3.3).
//
// The counting algorithm [Yan & García-Molina; Pereira et al.] supports only
// conjunctive subscriptions, so registration canonicalises every expression:
// NNF → DNF, then each disjunct is installed as an independent *transformed
// subscription* (tid) — exactly the multiplication of registered
// subscriptions the paper attributes to canonical approaches.
//
// Per-tid state follows the paper's memory-friendly list/array
// implementation ([2]-style): a 1-byte required-predicate count, a 1-byte
// hit counter (max 255 predicates per conjunction, the paper assumes 256),
// a 4-byte owner (the original subscription), and array-based
// predicate→tid association lists.
//
// The paper's measured configuration stores nothing else ("without the
// support of unsubscriptions"); this implementation additionally keeps the
// tid→disjunct predicate lists needed to honour remove(). Those bytes are
// reported under the "unsub_support/" memory prefix so bench_memory can
// reproduce both configurations.
#pragma once

#include <cstdint>
#include <vector>

#include "common/epoch_set.h"
#include "engine/engine.h"
#include "engine/posting_store.h"
#include "subscription/dnf.h"

namespace ncps {

/// Raised when a disjunct exceeds the 1-byte counter range.
class SubscriptionTooLargeError : public std::runtime_error {
 public:
  explicit SubscriptionTooLargeError(std::size_t predicates)
      : std::runtime_error("conjunction with " + std::to_string(predicates) +
                           " predicates exceeds the counting algorithm's "
                           "255-predicate limit") {}
};

class CountingBase : public FilterEngine {
 public:
  /// `support_unsubscription = false` reproduces the paper's measured
  /// configuration exactly: the tid→predicate lists are not stored, memory
  /// drops accordingly, and remove() reports failure for every id.
  CountingBase(PredicateTable& table, DnfOptions options,
               bool support_unsubscription = true)
      : FilterEngine(table),
        options_(options),
        support_unsubscription_(support_unsubscription) {}

  /// Disjuncts wider than this overflow the 1-byte counters (the paper
  /// assumes 256 predicates per subscription).
  static constexpr std::size_t kMaxPredicatesPerDisjunct = 255;

  SubscriptionId add(const ast::Node& expression) override;
  bool remove(SubscriptionId id) override;
  void validate(const ast::Node& expression,
                PredicateTable& scratch) const override;
  [[nodiscard]] std::unique_ptr<MatchContext> make_context() const override;

  [[nodiscard]] std::size_t subscription_count() const override {
    return live_count_;
  }

  /// Transformed (conjunctive) subscriptions currently registered — the
  /// "multiple of the number of original registered subscriptions" the
  /// counting phase actually works on.
  [[nodiscard]] std::size_t transformed_count() const { return live_tids_; }

  [[nodiscard]] MemoryBreakdown memory() const override;

  /// Chunked posting accounting for the predicate→tid association table
  /// (BENCH_memory's phase-2 compression row).
  [[nodiscard]] PostingStore::Stats assoc_stats() const {
    return assoc_.stats();
  }

  void compact_storage() override;

 protected:
  using Tid = std::uint32_t;
  static constexpr std::uint8_t kDeadTid = 0;  // required_[tid]==0 ⇒ dead slot

  /// Per-thread match scratch for both counting engines. The hit vector is
  /// the paper's per-matcher working set — each matching thread owns one,
  /// and the all-zero-between-events invariant holds per context. The
  /// touched list/set are used by the variant engine only (empty otherwise).
  struct CountingContext final : MatchContext {
    std::vector<std::uint8_t> hits;  // hit vector, dense by tid
    EpochSet matched_subs;           // output de-duplication across disjuncts
    std::vector<Tid> touched;        // variant: tids bumped this event
    EpochSet touched_set;

    void compact() override {
      MatchContext::compact();
      hits.shrink_to_fit();
      matched_subs.shrink_to_fit();
      touched.shrink_to_fit();
      touched_set.shrink_to_fit();
    }

    void add_memory(MemoryBreakdown& mem) const override {
      MatchContext::add_memory(mem);
      mem.add("hit_vector", vector_bytes(hits));
      mem.add("scratch/matched_set", matched_subs.memory_bytes());
      mem.add("scratch/touched_list", vector_bytes(touched));
      mem.add("scratch/touched_set", touched_set.memory_bytes());
    }
  };

  Tid allocate_tid();

  struct SubRecord {
    std::vector<Tid> tids;
    std::vector<Disjunct> disjuncts;  // per-tid predicate lists (unsub support)
    bool live = false;
  };

  DnfOptions options_;
  bool support_unsubscription_;

  // Dense per-tid arrays (the counting algorithm's read-only working set;
  // the per-event hit vector lives in the CountingContext).
  std::vector<std::uint8_t> required_;  // subscription-predicate count vector
  std::vector<std::uint32_t> owner_;    // tid → original subscription id

  // Association table: id(p) → {tid}, chunked posting lists (footnote 2).
  PostingStore assoc_;

  // Original-subscription bookkeeping.
  std::vector<SubRecord> subs_;
  std::vector<SubscriptionId> free_ids_;
  std::vector<Tid> free_tids_;
  std::size_t live_count_ = 0;
  std::size_t live_tids_ = 0;

 private:
  SubscriptionId allocate_id();
};

}  // namespace ncps
