// The original counting algorithm (paper §3.3 baseline; [15, 17]).
//
// Phase 2: bump a hit counter for every transformed subscription containing
// a fulfilled predicate, then scan *all* transformed subscriptions comparing
// hits to required counts — the full-scan step whose cost is linear in the
// (transformation-multiplied) subscription count, which is exactly the
// scaling behaviour Fig. 3 shows.
#pragma once

#include "engine/counting_base.h"

namespace ncps {

class CountingEngine final : public CountingBase {
 public:
  explicit CountingEngine(PredicateTable& table, DnfOptions options = {},
                          bool support_unsubscription = true)
      : CountingBase(table, options, support_unsubscription) {}

  void match_predicates_impl(std::span<const PredicateId> fulfilled,
                             std::size_t event_index, const Event& event,
                             MatchSink& sink, MatchContext& ctx) const override;

  [[nodiscard]] std::string_view name() const override { return "counting"; }

 private:
  template <typename Emit>
  void match_impl(std::span<const PredicateId> fulfilled, CountingContext& ctx,
                  Emit&& emit) const;
};

}  // namespace ncps
