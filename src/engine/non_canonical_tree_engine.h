// The paper's non-canonical prototype (§3.2/§3.3): per-subscription encoded
// byte trees, kept verbatim as the unshared baseline of the forest-backed
// NonCanonicalEngine (engine/non_canonical_engine.h).
//
// Four data structures drive subscription matching:
//   1. the one-dimensional predicate indexes (phase 1, in FilterEngine),
//   2. the predicate-subscription association table: id(p) → {id(s)},
//   3. the subscription location table: id(s) → loc(s) — here an
//      (offset, length) pair into one contiguous byte buffer,
//   4. the encoded subscription trees themselves (paper §3.3 byte layout).
//
// Phase 2: mark fulfilled predicates in an epoch-stamped truth array, gather
// candidate subscriptions (any subscription containing a fulfilled
// predicate), evaluate each candidate's encoded Boolean tree with truth
// lookups, and report the ones evaluating to true. No DNF is ever built —
// the subscription is filtered exactly as the subscriber wrote it — but
// every candidate pays its whole tree: N subscribers with identical filters
// evaluate N identical trees per event. bench_sharing quantifies that
// against the shared-forest engine.
//
// One correctness addition beyond the paper: a subscription whose expression
// is satisfiable with *zero* fulfilled predicates (e.g. `not a == 1`, or the
// NotExists operator) can never become a candidate through the association
// table. Such subscriptions are kept on an always-candidate list and
// evaluated for every event. The paper's workloads (AND/OR only) never
// produce them, so the list is empty in every benchmark.
#pragma once

#include <cstddef>
#include <vector>

#include "common/epoch_set.h"
#include "engine/engine.h"
#include "engine/posting_store.h"
#include "subscription/encoded_tree.h"
#include "subscription/encoded_tree_v2.h"

namespace ncps {

/// Which byte layout the engine stores subscription trees in.
enum class TreeEncoding : std::uint8_t {
  kV1Paper,   ///< the paper's §3.3 fixed-width layout
  kV2Varint,  ///< the improved varint layout (paper §5 future work)
};

class NonCanonicalTreeEngine final : public FilterEngine {
 public:
  explicit NonCanonicalTreeEngine(PredicateTable& table,
                                  ReorderPolicy reorder = ReorderPolicy::kNone,
                                  TreeEncoding encoding = TreeEncoding::kV1Paper)
      : FilterEngine(table), reorder_(reorder), encoding_(encoding) {}

  SubscriptionId add(const ast::Node& expression) override;
  bool remove(SubscriptionId id) override;
  /// Throws exactly what add() would (EncodeError for trees beyond the
  /// paper's 255-child/65535-byte-subtree limits), registering nothing —
  /// the broker pre-validates deferred subscribe commands with this so a
  /// queued command cannot fail at application time.
  void validate(const ast::Node& expression,
                PredicateTable& scratch) const override;
  [[nodiscard]] std::unique_ptr<MatchContext> make_context() const override;
  void match_predicates_impl(std::span<const PredicateId> fulfilled,
                             std::size_t event_index, const Event& event,
                             MatchSink& sink, MatchContext& ctx) const override;

  [[nodiscard]] std::size_t subscription_count() const override {
    return live_count_;
  }
  [[nodiscard]] MemoryBreakdown memory() const override;
  [[nodiscard]] std::string_view name() const override {
    return "non-canonical-tree";
  }

  /// Bytes of encoded tree storage currently dead (left by removals).
  /// Exposed so tests can drive compaction policy decisions.
  [[nodiscard]] std::size_t dead_tree_bytes() const { return dead_bytes_; }

  /// Reclaim dead tree bytes by rewriting the buffer (invalidates nothing
  /// externally; location table is updated in place).
  void compact_tree_storage();

  void compact_storage() override;

  /// Start/stop recording per-predicate fulfilment frequencies (off by
  /// default; a small per-event cost on the fulfilled set). Single-threaded
  /// bench facility: the frequency counters are engine state written on the
  /// match path, so statistics must stay off while matching concurrently.
  void enable_statistics(bool on) { stats_enabled_ = on; }

  /// Re-encode every live subscription tree ordered by observed predicate
  /// selectivity: AND children least-likely-true first (fail fast), OR
  /// children most-likely-true first (succeed fast). Matching results are
  /// unchanged; expected truth lookups per evaluation drop. This is the
  /// paper's §3.2 "reordering subscription trees" optimisation, driven by
  /// statistics gathered via enable_statistics().
  void reorder_trees_by_selectivity();

  /// Events observed since statistics were enabled.
  [[nodiscard]] std::uint64_t observed_events() const { return events_seen_; }

  /// Chunked posting accounting for the predicate→subscription association
  /// table (BENCH_memory's phase-2 compression row).
  [[nodiscard]] PostingStore::Stats assoc_stats() const {
    return assoc_.stats();
  }

 private:
  /// Per-thread match scratch (epoch-cleared, allocation-free on the hot
  /// path).
  struct TreeContext final : MatchContext {
    EpochSet truth;      // fulfilled predicates
    EpochSet seen_subs;  // candidate de-duplication

    void compact() override {
      MatchContext::compact();
      truth.shrink_to_fit();
      seen_subs.shrink_to_fit();
    }

    void add_memory(MemoryBreakdown& mem) const override {
      MatchContext::add_memory(mem);
      mem.add("scratch/truth_set", truth.memory_bytes());
      mem.add("scratch/candidate_set", seen_subs.memory_bytes());
    }
  };

  /// The one phase-2 matching loop, emitting into the sink adapter.
  template <typename Emit>
  void match_impl(std::span<const PredicateId> fulfilled, TreeContext& ctx,
                  Emit&& emit) const;

  struct Location {
    std::uint32_t offset = 0;
    std::uint32_t length = 0;
  };

  struct SubRecord {
    std::vector<PredicateId> unique_predicates;
    bool live = false;
    bool always_candidate = false;
  };

  SubscriptionId allocate_id();

  ReorderPolicy reorder_;
  TreeEncoding encoding_;

  std::vector<std::byte> tree_bytes_;   // all encoded subscription trees
  std::vector<Location> locations_;     // subscription location table
  std::vector<SubRecord> subs_;         // per-subscription bookkeeping
  std::vector<SubscriptionId> free_ids_;
  std::size_t live_count_ = 0;
  std::size_t dead_bytes_ = 0;

  // Association table: id(p) → {id(s)}, dense by predicate id, packed into
  // chunked posting lists (paper footnote 2: array-based association).
  PostingStore assoc_;
  std::vector<SubscriptionId> always_candidates_;

  // Selectivity statistics (enable_statistics). Written on the (const)
  // match path when enabled, hence mutable — a documented single-threaded
  // bench facility, never on under concurrent matching.
  bool stats_enabled_ = false;
  mutable std::uint64_t events_seen_ = 0;
  mutable std::vector<std::uint32_t> fulfilled_count_;  // per predicate id

  std::vector<PredicateId> pred_scratch_;
};

}  // namespace ncps
