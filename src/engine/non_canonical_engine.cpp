#include "engine/non_canonical_engine.h"

#include <algorithm>

#include "common/contracts.h"
#include "common/hash.h"
#include "storage/serializer.h"
#include "subscription/covering.h"

namespace ncps {

NonCanonicalEngine::NonCanonicalEngine(PredicateTable& table, Options options)
    : FilterEngine(table),
      options_(options),
      forest_([this](PredicateId p) { acquire_predicate(p); },
              [this](PredicateId p) { release_predicate(p); },
              options.normalisation) {}

SubscriptionId NonCanonicalEngine::allocate_id() {
  if (!free_ids_.empty()) {
    const SubscriptionId id = free_ids_.back();
    free_ids_.pop_back();
    return id;
  }
  const SubscriptionId id(static_cast<std::uint32_t>(subs_.size()));
  subs_.emplace_back();
  return id;
}

std::uint64_t NonCanonicalEngine::expression_signature(
    const ast::Node& expression) {
  pred_scratch_.clear();
  ast::collect_predicates(expression, pred_scratch_);
  std::sort(pred_scratch_.begin(), pred_scratch_.end());
  pred_scratch_.erase(
      std::unique(pred_scratch_.begin(), pred_scratch_.end()),
      pred_scratch_.end());
  std::uint64_t sig = hash_mix(0x51d5ull, pred_scratch_.size());
  for (const PredicateId pid : pred_scratch_) {
    sig = hash_mix(sig, pid.value());
  }
  return sig;
}

void NonCanonicalEngine::validate(const ast::Node& expression,
                                  PredicateTable& /*scratch*/) const {
  SharedForest::validate_limits(expression);
}

SubscriptionId NonCanonicalEngine::add(const ast::Node& expression) {
  // Node slots released by earlier removals become reusable here: add() is
  // ordered after any matching that could still walk them (engines are
  // serialised per shard; see shared_forest.h).
  forest_.reclaim_quarantine();

  // intern() checks limits before any mutation, so an oversized
  // expression throws here with no state change.
  const SharedForest::InternResult interned =
      forest_.intern(expression, &perm_scratch_);
  NodeId root = interned.id;
  const std::uint64_t signature = expression_signature(expression);
  if (interned.created && options_.root_subsumption) {
    root = try_alias_equivalent(expression, root, signature);
  }
  // An aliased subscription lives on a root whose stored form is not the
  // written expression; its permutation (recorded against the structural
  // root) would replay onto the wrong node.
  if (root != interned.id) perm_scratch_.clear();

  const SubscriptionId id = allocate_id();
  const bool new_result_root = root_head_.find(root) == root_head_.end();
  attach(id, root, signature);
  subs_[id.value()].perm = std::move(perm_scratch_);
  perm_scratch_ = {};
  if (new_result_root && options_.partial_sharing && !pred_scratch_.empty()) {
    // Probe for a donor first (the candidate index must not yet contain
    // this root), then index the newcomer so it can donate in turn.
    // pred_scratch_ still holds the expression's sorted unique predicates
    // from expression_signature(). Each root is indexed under its
    // *smallest* predicate id only — one entry per root instead of one per
    // (root, predicate). That reaches every refinement-shaped donor (a
    // conjunctive donor's predicates all recur in its borrowers); a
    // disjunctive donor whose smallest predicate the borrower lacks is
    // conservatively missed (see try_adopt_donor).
    try_adopt_donor(root, expression);
    roots_by_pred_[pred_scratch_.front().value()].push_back(root);
  }
  ++live_count_;
  return id;
}

ast::NodePtr NonCanonicalEngine::subscription_ast(SubscriptionId id) const {
  if (!id.valid() || id.value() >= subs_.size() || !subs_[id.value()].live) {
    return nullptr;
  }
  const SubRecord& record = subs_[id.value()];
  return forest_.to_ast(record.root, record.perm);
}

NonCanonicalEngine::NodeId NonCanonicalEngine::try_alias_equivalent(
    const ast::Node& expression, NodeId fresh_root, std::uint64_t signature) {
  const auto it = roots_by_sig_.find(signature);
  if (it == roots_by_sig_.end()) return fresh_root;
  std::size_t probes = 0;
  for (const NodeId candidate : it->second) {
    if (candidate == fresh_root) continue;
    if (++probes > options_.max_subsumption_probes) break;
    const ast::NodePtr candidate_ast = forest_.to_ast(candidate);
    // Mutual covering proves semantic equivalence, which is what sharing a
    // *result* node requires; one-directional covering would be unsound.
    if (covers(*candidate_ast, expression, *table_,
               options_.subsumption_budget) &&
        covers(expression, *candidate_ast, *table_,
               options_.subsumption_budget)) {
      forest_.add_ref(candidate);
      forest_.release(fresh_root);
      ++subsumption_hits_;
      return candidate;
    }
  }
  return fresh_root;
}

void NonCanonicalEngine::collect_root_predicates(
    NodeId root, std::vector<PredicateId>& out) const {
  if (forest_.kind(root) == ast::NodeKind::Leaf) {
    out.push_back(forest_.leaf_predicate(root));
    return;
  }
  for (const NodeId child : forest_.children(root)) {
    collect_root_predicates(child, out);
  }
}

namespace {

bool contains_not(const ast::Node& node) {
  if (node.kind == ast::NodeKind::Not) return true;
  for (const auto& child : node.children) {
    if (contains_not(*child)) return true;
  }
  return false;
}

}  // namespace

bool NonCanonicalEngine::root_contains_not(NodeId root) const {
  if (forest_.kind(root) == ast::NodeKind::Not) return true;
  if (forest_.kind(root) == ast::NodeKind::Leaf) return false;
  for (const NodeId child : forest_.children(root)) {
    if (root_contains_not(child)) return true;
  }
  return false;
}

void NonCanonicalEngine::try_adopt_donor(NodeId root,
                                         const ast::Node& expression) {
  // NOT is excluded from partial sharing outright: canonicalisation
  // rewrites `not p` into p's interned *complement predicate*, and the two
  // disagree when p's attribute is absent from the event (a complement
  // predicate is false on absence, `not p` is true). A propositional proof
  // that leans on such a literal would gate the borrower on semantics its
  // own evaluation does not share — see the NOT discussion in DESIGN.md
  // §3. NOT-free on both sides, every DNF literal is a written predicate
  // with identical fulfilled-set semantics in donor and borrower, and the
  // proof is assignment-sound.
  if (contains_not(expression)) return;
  // Candidate donors share at least one interned predicate with the new
  // root — the overlapping-population shape (a hot base query extended
  // with extra conjuncts) partial sharing targets. The index is a
  // heuristic: each result root is filed under its smallest predicate id,
  // so refinement-shaped donors are always reachable, while a disjunctive
  // donor whose smallest predicate the borrower lacks is (conservatively)
  // missed. The budget bounds every candidate *examined*, not just the
  // covering proofs run, so an add can never walk an unbounded list.
  std::size_t examined = 0;
  std::vector<NodeId> probed;  // a root can sit in several predicate lists
  for (const PredicateId pid : pred_scratch_) {
    const auto it = roots_by_pred_.find(pid.value());
    if (it == roots_by_pred_.end()) continue;
    for (const NodeId donor : it->second) {
      if (donor == root) continue;
      if (++examined > options_.max_partial_probes) return;
      // Never chain borrowers: a borrower's own truth may be skipped
      // entirely (deferred evaluation), so it cannot gate anyone else.
      if (donor < donor_of_.size() &&
          donor_of_[donor] != SharedForest::kNoNode) {
        continue;
      }
      if (std::find(probed.begin(), probed.end(), donor) != probed.end()) {
        continue;
      }
      probed.push_back(donor);
      if (root_contains_not(donor)) continue;
      const ast::NodePtr donor_ast = forest_.to_ast(donor);
      if (!covers(*donor_ast, expression, *table_,
                  options_.subsumption_budget,
                  ImplicationMode::Propositional)) {
        continue;
      }
      // Adopt: the borrower holds one reference on the donor's node, so
      // the donor's memoized truth stays computable until the borrower
      // detaches — a partially-shared root can never outlive its donor.
      forest_.add_ref(donor);
      if (donor_of_.size() <= root) {
        donor_of_.resize(root + 1, SharedForest::kNoNode);
      }
      donor_of_[root] = donor;
      ++live_borrowers_;
      return;
    }
  }
}

void NonCanonicalEngine::attach(SubscriptionId id, NodeId root,
                                std::uint64_t signature) {
  SubRecord& record = subs_[id.value()];
  record.root = root;
  record.prev = kNoSub;
  record.live = true;

  const auto [it, first_sub] = root_head_.try_emplace(root, id.value());
  if (!first_sub) {
    record.next = it->second;
    subs_[it->second].prev = id.value();
    it->second = id.value();
    return;
  }
  record.next = kNoSub;
  if (is_root_.size() <= root) is_root_.resize(root + 1, 0);
  is_root_[root] = 1;
  root_sig_.emplace(root, signature);
  roots_by_sig_[signature].push_back(root);
  if (forest_.static_truth(root)) always_roots_.push_back(root);
}

void NonCanonicalEngine::detach(SubscriptionId id) {
  SubRecord& record = subs_[id.value()];
  const NodeId root = record.root;
  if (record.prev != kNoSub) {
    subs_[record.prev].next = record.next;
    if (record.next != kNoSub) subs_[record.next].prev = record.prev;
  } else {
    const auto head = root_head_.find(root);
    NCPS_DASSERT(head != root_head_.end() && head->second == id.value());
    if (record.next != kNoSub) {
      head->second = record.next;
      subs_[record.next].prev = kNoSub;
    } else {
      // Last subscription on this root: it stops being a result root.
      root_head_.erase(head);
      is_root_[root] = 0;
      const auto sig = root_sig_.find(root);
      NCPS_DASSERT(sig != root_sig_.end());
      auto& ring = roots_by_sig_[sig->second];
      ring.erase(std::find(ring.begin(), ring.end(), root));
      if (ring.empty()) roots_by_sig_.erase(sig->second);
      root_sig_.erase(sig);
      if (forest_.static_truth(root)) {
        auto& always = always_roots_;
        always.erase(std::find(always.begin(), always.end(), root));
      }
      if (options_.partial_sharing) {
        // Drop out of the donor candidate index (mirrors the add()-time
        // registration under the root's smallest predicate id; the walk
        // reproduces the same unique predicate set).
        pred_scratch_.clear();
        collect_root_predicates(root, pred_scratch_);
        const PredicateId min_pred =
            *std::min_element(pred_scratch_.begin(), pred_scratch_.end());
        const auto index = roots_by_pred_.find(min_pred.value());
        NCPS_DASSERT(index != roots_by_pred_.end());
        auto& list = index->second;
        list.erase(std::find(list.begin(), list.end(), root));
        if (list.empty()) roots_by_pred_.erase(index);
        // A borrower releases its donor reference with its last
        // subscription; the donor's node may cascade away here if nothing
        // else holds it.
        if (root < donor_of_.size() &&
            donor_of_[root] != SharedForest::kNoNode) {
          forest_.release(donor_of_[root]);
          donor_of_[root] = SharedForest::kNoNode;
          --live_borrowers_;
        }
      }
    }
  }
  forest_.release(root);
}

bool NonCanonicalEngine::remove(SubscriptionId id) {
  if (!id.valid() || id.value() >= subs_.size() || !subs_[id.value()].live) {
    return false;
  }
  detach(id);
  subs_[id.value()] = SubRecord{};
  free_ids_.push_back(id);
  --live_count_;
  // Hand freshly quarantined nodes to the epoch domain now rather than
  // waiting for the next add(): under churn-during-match the retire path is
  // what makes slot reuse grace-safe, and deferring it to the next add would
  // let the quarantine grow unboundedly on unsubscribe-heavy workloads.
  forest_.reclaim_quarantine();
  return true;
}

std::unique_ptr<MatchContext> NonCanonicalEngine::make_context() const {
  return std::make_unique<ForestContext>();
}

void NonCanonicalEngine::force_scratch_epoch_wrap() {
  static_cast<ForestContext&>(default_context())
      .touched.jump_epoch_for_test(~0u);
}

void NonCanonicalEngine::match_predicates_impl(
    std::span<const PredicateId> fulfilled, std::size_t event_index,
    const Event& event, MatchSink& sink, MatchContext& ctx) const {
  match_impl(fulfilled, static_cast<ForestContext&>(ctx),
             [&](SubscriptionId sid) {
               sink.on_match(event_index, event, sid);
             });
}

template <typename Emit>
void NonCanonicalEngine::match_impl(std::span<const PredicateId> fulfilled,
                                    ForestContext& ctx, Emit&& emit) const {
  const std::size_t bound = forest_.node_bound();
  if (ctx.touched.capacity() < bound) ctx.touched.resize(bound);
  if (ctx.value.size() < bound) ctx.value.resize(bound);
  ctx.touched.clear();
  ctx.frontier.clear();
  ctx.max_rank_touched = 0;
#ifndef NDEBUG
  // Scratch-reset invariant: the previous event must have drained every
  // rank bucket it filled, whatever shape it had (a tall tree followed by
  // a leaf-only event must not replay stale high-rank nodes).
  for (const auto& bucket : ctx.rank_buckets) NCPS_DASSERT(bucket.empty());
#endif

  // Per-event truth states in ctx.value (valid only while touched): 0/1 are
  // memoized results, kDeferred marks a borrower root whose evaluation
  // waits on its donor's truth at emit time.
  constexpr std::uint8_t kDeferred = 2;

  // Seed: fulfilled predicates stamp their leaf nodes true...
  for (const PredicateId pid : fulfilled) {
    const NodeId leaf = forest_.leaf_of(pid);
    if (leaf == SharedForest::kNoNode) continue;
    if (ctx.touched.insert(leaf)) {
      ctx.value[leaf] = 1;
      ctx.frontier.push_back(leaf);
    }
  }
  // ...and flood upward along parent edges: the candidate-reachable
  // frontier is every DAG ancestor of a fulfilled leaf, each visited once
  // however many subscriptions share it. A borrower root nothing consumes
  // from above defers: its donor's truth decides at emit time whether it
  // is evaluated at all.
  for (std::size_t i = 0; i < ctx.frontier.size(); ++i) {
    forest_.for_each_parent(ctx.frontier[i], [&](NodeId parent) {
      if (ctx.touched.insert(parent)) {
        ctx.frontier.push_back(parent);
        if (parent < donor_of_.size() &&
            donor_of_[parent] != SharedForest::kNoNode &&
            !forest_.has_parents(parent)) {
          ctx.value[parent] = kDeferred;
          return;
        }
        const std::uint32_t r = forest_.rank(parent);
        if (r >= ctx.rank_buckets.size()) ctx.rank_buckets.resize(r + 1);
        ctx.rank_buckets[r].push_back(parent);
        ctx.max_rank_touched = std::max(ctx.max_rank_touched, r);
      }
    });
  }

  // Evaluate the frontier's interior nodes bottom-up (rank order is a
  // topological order: children rank strictly below parents). A child
  // outside the frontier contains no fulfilled predicate, so its value is
  // its precomputed all-false truth.
  const auto value_of = [&](NodeId n) {
    ++ctx.stats.truth_lookups;
    if (!ctx.touched.contains(n)) return forest_.static_truth(n);
    // Deferred nodes have no DAG parents, so no evaluation reads them.
    NCPS_DASSERT(ctx.value[n] != kDeferred);
    return ctx.value[n] != 0;
  };
  const auto eval_node = [&](NodeId n) {
    ++ctx.stats.node_evaluations;
    const std::span<const NodeId> kids = forest_.children(n);
    bool v = false;
    switch (forest_.kind(n)) {
      case ast::NodeKind::And:
        v = true;
        for (const NodeId c : kids) {
          if (!value_of(c)) {
            v = false;
            break;
          }
        }
        break;
      case ast::NodeKind::Or:
        for (const NodeId c : kids) {
          if (value_of(c)) {
            v = true;
            break;
          }
        }
        break;
      case ast::NodeKind::Not:
        v = !value_of(kids.front());
        break;
      case ast::NodeKind::Leaf:
        NCPS_ASSERT(false && "leaves are seeded, never evaluated");
    }
    return v;
  };
  for (std::uint32_t r = 1; r <= ctx.max_rank_touched; ++r) {
    for (const NodeId n : ctx.rank_buckets[r]) {
      ctx.value[n] = eval_node(n) ? 1 : 0;
    }
    ctx.rank_buckets[r].clear();
  }

  // Emit: every touched result root whose memoized value is true notifies
  // all subscriptions chained on it...
  const auto emit_root = [&](NodeId root) {
    for (std::uint32_t s = root_head_.find(root)->second; s != kNoSub;
         s = subs_[s].next) {
      ++ctx.stats.candidates;
      emit(SubscriptionId(s));
      ++ctx.stats.matches;
    }
  };
  // Donor truth for a borrower root. kDeferred can only appear here if a
  // former donor was itself re-added and turned borrower; treating it as
  // true keeps gating conservative (the borrower then stands on its own
  // evaluation).
  const auto donor_allows = [&](NodeId root) {
    if (root >= donor_of_.size()) return true;
    const NodeId donor = donor_of_[root];
    if (donor == SharedForest::kNoNode) return true;
    const bool donor_true = ctx.touched.contains(donor)
                                ? ctx.value[donor] != 0
                                : forest_.static_truth(donor);
    if (!donor_true) ++ctx.stats.covering_skips;
    return donor_true;
  };
  // is_root_ is sized by attach(): nodes above the highest root id (fresh
  // interior nodes) simply are not roots. Read, never resize — the match
  // path must not mutate engine state.
  const auto is_result_root = [&](NodeId n) {
    return n < is_root_.size() && is_root_[n] != 0;
  };
  for (const NodeId n : ctx.frontier) {
    if (!is_result_root(n)) continue;
    if (!donor_allows(n)) {
      // The covering donor refuted the event: the borrower cannot match,
      // so its subscription chain is never even scanned as candidates.
      continue;
    }
    if (ctx.value[n] == kDeferred) {
      // Donor truth admitted the borrower: evaluate it now — children are
      // already memoized (or static), ranks strictly below.
      ctx.value[n] = eval_node(n) ? 1 : 0;
    }
    if (ctx.value[n] != 0) {
      emit_root(n);
    } else {
      // Candidates examined but refuted.
      for (std::uint32_t s = root_head_.find(n)->second; s != kNoSub;
           s = subs_[s].next) {
        ++ctx.stats.candidates;
      }
    }
  }
  // ...plus the always-candidate roots the frontier never reached: with no
  // fulfilled predicate below them their static truth (true) stands.
  for (const NodeId root : always_roots_) {
    if (ctx.touched.contains(root)) continue;  // evaluated above
    if (!donor_allows(root)) continue;  // donor refuted: cannot match
    emit_root(root);
  }
}

std::uint64_t NonCanonicalEngine::root_signature(NodeId root) {
  // Mirror of expression_signature over the stored root: the stored form
  // has exactly the written expression's predicate set (normalisation only
  // reorders; subsumption aliases only onto same-signature roots).
  pred_scratch_.clear();
  collect_root_predicates(root, pred_scratch_);
  std::sort(pred_scratch_.begin(), pred_scratch_.end());
  pred_scratch_.erase(std::unique(pred_scratch_.begin(), pred_scratch_.end()),
                      pred_scratch_.end());
  std::uint64_t sig = hash_mix(0x51d5ull, pred_scratch_.size());
  for (const PredicateId pid : pred_scratch_) sig = hash_mix(sig, pid.value());
  return sig;
}

bool NonCanonicalEngine::permutation_valid(
    NodeId root, std::span<const std::uint32_t> perm,
    std::size_t& cursor) const {
  // Replays exactly the traversal to_ast(root, perm) performs, but returns
  // false instead of tripping its asserts — snapshot input is untrusted.
  switch (forest_.kind(root)) {
    case ast::NodeKind::Leaf:
      return true;
    case ast::NodeKind::Not:
      return permutation_valid(forest_.children(root).front(), perm, cursor);
    case ast::NodeKind::And:
    case ast::NodeKind::Or:
      break;
  }
  const std::span<const NodeId> stored = forest_.children(root);
  if (cursor + stored.size() > perm.size()) return false;
  const std::span<const std::uint32_t> p = perm.subspan(cursor, stored.size());
  cursor += stored.size();
  std::uint64_t seen = 0;
  for (std::size_t written = 0; written < stored.size(); ++written) {
    if (p[written] >= stored.size()) return false;
    if (stored.size() <= 64) {
      // Fast duplicate check for the overwhelmingly common small fan-out.
      const std::uint64_t bit = 1ull << p[written];
      if (seen & bit) return false;
      seen |= bit;
    }
    if (!permutation_valid(stored[p[written]], perm, cursor)) return false;
  }
  if (stored.size() > 64) {
    std::vector<std::uint32_t> sorted(p.begin(), p.end());
    std::sort(sorted.begin(), sorted.end());
    for (std::uint32_t i = 0; i < sorted.size(); ++i) {
      if (sorted[i] != i) return false;
    }
  }
  return true;
}

void NonCanonicalEngine::prepare_snapshot() {
  forest_.compact_storage();
}

void NonCanonicalEngine::save_state(storage::Writer& w) const {
  table_->save_state(w);
  forest_.save_state(w);

  w.varint(subs_.size());
  w.varint(live_count_);
  for (std::uint32_t id = 0; id < subs_.size(); ++id) {
    const SubRecord& record = subs_[id];
    if (!record.live) continue;
    w.varint(id);
    w.varint(record.root);
    w.varint(record.perm.size());
    for (const std::uint32_t entry : record.perm) w.varint(entry);
  }

  std::uint64_t borrowers = 0;
  for (const NodeId donor : donor_of_) {
    if (donor != SharedForest::kNoNode) ++borrowers;
  }
  NCPS_DASSERT(borrowers == live_borrowers_);
  w.varint(borrowers);
  for (NodeId root = 0; root < donor_of_.size(); ++root) {
    if (donor_of_[root] != SharedForest::kNoNode) {
      w.varint(root);
      w.varint(donor_of_[root]);
    }
  }
}

void NonCanonicalEngine::load_state(storage::Reader& r,
                                    std::span<const AttributeId> attr_remap,
                                    ThreadPool* pool) {
  NCPS_EXPECTS(subs_.empty() && live_count_ == 0 &&
               forest_.live_nodes() == 0 && table_->size() == 0);

  table_->load_state(r, attr_remap);
  forest_.load_state(r, table_->id_bound());

  // The predicate ownership ledger: at a quiesced snapshot every live table
  // predicate is owned by exactly its forest leaf (the leaf hooks), so the
  // two live sets must coincide.
  const std::size_t pred_bound = table_->id_bound();
  use_count_.assign(pred_bound, 0);
  std::vector<PredicateIndex::BulkEntry> entries;
  entries.reserve(table_->size());
  for (std::uint32_t pid = 0; pid < pred_bound; ++pid) {
    const bool pred_live = table_->is_live(PredicateId(pid));
    const bool leaf_live = forest_.leaf_of(PredicateId(pid)) !=
                           SharedForest::kNoNode;
    if (pred_live != leaf_live) {
      throw StorageError("predicate/leaf ownership mismatch in snapshot");
    }
    if (!pred_live) continue;
    use_count_[pid] = 1;
    entries.push_back({PredicateId(pid), &table_->get(PredicateId(pid))});
  }
  index_.bulk_load(entries, pool);

  // Subscription records: each live subscription holds one root reference
  // and (under SortedChildren) its evaluation permutation.
  const std::size_t node_bound = forest_.node_bound();
  const std::uint64_t sub_bound =
      r.varint_max(1u << 30, "subscription id bound");
  const std::uint64_t live = r.varint_max(sub_bound, "live subscriptions");
  subs_.resize(sub_bound);
  for (std::uint64_t n = 0; n < live; ++n) {
    const std::uint64_t id =
        r.varint_max(sub_bound - 1, "subscription id");
    if (subs_[id].live) throw StorageError("duplicate subscription id");
    const std::uint64_t root =
        r.varint_max(node_bound - 1, "subscription root");
    if (!forest_.is_live(static_cast<NodeId>(root))) {
      throw StorageError("subscription attached to a dead root");
    }
    const std::uint64_t perm_size =
        r.varint_max(r.remaining(), "permutation size");
    std::vector<std::uint32_t> perm;
    perm.reserve(perm_size);
    for (std::uint64_t i = 0; i < perm_size; ++i) {
      perm.push_back(static_cast<std::uint32_t>(
          r.varint_max(SharedForest::kMaxChildren - 1, "permutation entry")));
    }
    if (!perm.empty()) {
      if (options_.normalisation == Normalisation::None) {
        throw StorageError("permutation under order-preserving identity");
      }
      std::size_t cursor = 0;
      if (!permutation_valid(static_cast<NodeId>(root), perm, cursor) ||
          cursor != perm.size()) {
        throw StorageError("invalid evaluation permutation");
      }
    }
    attach(SubscriptionId(static_cast<std::uint32_t>(id)),
           static_cast<NodeId>(root),
           root_signature(static_cast<NodeId>(root)));
    subs_[id].perm = std::move(perm);
    ++live_count_;
  }
  for (std::uint32_t id = static_cast<std::uint32_t>(sub_bound); id-- > 0;) {
    if (!subs_[id].live) free_ids_.push_back(SubscriptionId(id));
  }

  // Partial-sharing borrower -> donor pairs.
  const std::uint64_t borrowers =
      r.varint_max(live, "borrower count");
  donor_of_.assign(node_bound, SharedForest::kNoNode);
  for (std::uint64_t n = 0; n < borrowers; ++n) {
    const std::uint64_t root = r.varint_max(node_bound - 1, "borrower root");
    const std::uint64_t donor = r.varint_max(node_bound - 1, "donor node");
    if (!options_.partial_sharing) {
      throw StorageError("donor records but partial sharing is disabled");
    }
    if (!forest_.is_live(static_cast<NodeId>(donor)) ||
        root_head_.find(static_cast<NodeId>(root)) == root_head_.end()) {
      throw StorageError("borrower/donor pair references a dead node");
    }
    if (donor_of_[root] != SharedForest::kNoNode) {
      throw StorageError("duplicate borrower record");
    }
    if (donor_of_[donor] != SharedForest::kNoNode) {
      throw StorageError("chained borrower in snapshot");
    }
    donor_of_[root] = static_cast<NodeId>(donor);
  }
  live_borrowers_ = borrowers;
  // A donor that is itself a borrower can also appear with the pairs in
  // the other order; the chain check above only catches donor-first.
  for (NodeId root = 0; root < donor_of_.size(); ++root) {
    const NodeId donor = donor_of_[root];
    if (donor != SharedForest::kNoNode &&
        donor_of_[donor] != SharedForest::kNoNode) {
      throw StorageError("chained borrower in snapshot");
    }
  }

  // Donor candidate index: exactly the current result roots, each filed
  // under its smallest predicate id (mirrors add()/detach()). Ascending
  // node id keeps recovered probe order deterministic.
  if (options_.partial_sharing) {
    std::vector<NodeId> roots;
    roots.reserve(root_head_.size());
    for (const auto& [root, head] : root_head_) roots.push_back(root);
    std::sort(roots.begin(), roots.end());
    for (const NodeId root : roots) {
      pred_scratch_.clear();
      collect_root_predicates(root, pred_scratch_);
      const PredicateId min_pred =
          *std::min_element(pred_scratch_.begin(), pred_scratch_.end());
      roots_by_pred_[min_pred.value()].push_back(root);
    }
  }

  // Full ownership ledger: every forest reference must be accounted for by
  // a parent edge, a subscription's root reference or a borrower's donor
  // reference. An over-count merely leaks, but an under-count would free a
  // node still chained to subscriptions — reject both.
  std::vector<std::uint32_t> expected(node_bound, 0);
  for (NodeId id = 0; id < node_bound; ++id) {
    if (!forest_.is_live(id) || forest_.kind(id) == ast::NodeKind::Leaf) {
      continue;
    }
    for (const NodeId child : forest_.children(id)) ++expected[child];
  }
  for (const SubRecord& record : subs_) {
    if (record.live) ++expected[record.root];
  }
  for (const NodeId donor : donor_of_) {
    if (donor != SharedForest::kNoNode) ++expected[donor];
  }
  for (NodeId id = 0; id < node_bound; ++id) {
    if (forest_.is_live(id) && forest_.ref_count(id) != expected[id]) {
      throw StorageError("forest ownership ledger mismatch");
    }
  }
}

void NonCanonicalEngine::compact_storage() {
  FilterEngine::compact_storage();
  forest_.compact_storage();
  for (auto& record : subs_) record.perm.shrink_to_fit();
  subs_.shrink_to_fit();
  free_ids_.shrink_to_fit();
  is_root_.shrink_to_fit();
  always_roots_.shrink_to_fit();
  donor_of_.shrink_to_fit();
  for (auto& entry : roots_by_pred_) entry.second.shrink_to_fit();
  perm_scratch_.shrink_to_fit();
  pred_scratch_.shrink_to_fit();
  for (auto& entry : roots_by_sig_) entry.second.shrink_to_fit();
}

MemoryBreakdown NonCanonicalEngine::memory() const {
  MemoryBreakdown mem;
  mem.add_nested("forest/", forest_.memory());
  // Unsubscription support: each subscription's root reference + chain
  // links (the forest analogue of the paper's footnote-1 association),
  // plus the per-root evaluation permutations (SortedChildren only).
  std::size_t records = vector_bytes(subs_);
  for (const auto& record : subs_) records += vector_bytes(record.perm);
  mem.add("unsub_support/subscription_records", records);
  std::size_t attachment = unordered_map_bytes(root_head_) +
                           unordered_map_bytes(root_sig_) +
                           unordered_map_bytes(roots_by_sig_) +
                           vector_bytes(always_roots_) +
                           vector_bytes(is_root_);
  for (const auto& entry : roots_by_sig_) {
    attachment += vector_bytes(entry.second);
  }
  mem.add("root_attachment", attachment);
  std::size_t partial = vector_bytes(donor_of_) +
                        unordered_map_bytes(roots_by_pred_);
  for (const auto& entry : roots_by_pred_) {
    partial += vector_bytes(entry.second);
  }
  mem.add("partial_sharing", partial);
  // Match scratch is context-owned now; the engine accounts only for its
  // own (legacy-path) default context. Per-worker contexts belong to the
  // broker layer.
  if (const MatchContext* ctx = default_context_if_any()) {
    ctx->add_memory(mem);
  }
  mem.add("scratch/free_ids", vector_bytes(free_ids_));
  mem.add_nested("index/", index_.memory());
  return mem;
}

}  // namespace ncps
