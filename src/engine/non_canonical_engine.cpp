#include "engine/non_canonical_engine.h"

#include <algorithm>

#include "common/contracts.h"
#include "common/hash.h"
#include "subscription/covering.h"

namespace ncps {

NonCanonicalEngine::NonCanonicalEngine(PredicateTable& table, Options options)
    : FilterEngine(table),
      options_(options),
      forest_([this](PredicateId p) { acquire_predicate(p); },
              [this](PredicateId p) { release_predicate(p); }) {}

SubscriptionId NonCanonicalEngine::allocate_id() {
  if (!free_ids_.empty()) {
    const SubscriptionId id = free_ids_.back();
    free_ids_.pop_back();
    return id;
  }
  const SubscriptionId id(static_cast<std::uint32_t>(subs_.size()));
  subs_.emplace_back();
  return id;
}

std::uint64_t NonCanonicalEngine::expression_signature(
    const ast::Node& expression) {
  pred_scratch_.clear();
  ast::collect_predicates(expression, pred_scratch_);
  std::sort(pred_scratch_.begin(), pred_scratch_.end());
  pred_scratch_.erase(
      std::unique(pred_scratch_.begin(), pred_scratch_.end()),
      pred_scratch_.end());
  std::uint64_t sig = hash_mix(0x51d5ull, pred_scratch_.size());
  for (const PredicateId pid : pred_scratch_) {
    sig = hash_mix(sig, pid.value());
  }
  return sig;
}

void NonCanonicalEngine::validate(const ast::Node& expression,
                                  PredicateTable& /*scratch*/) const {
  SharedForest::validate_limits(expression);
}

SubscriptionId NonCanonicalEngine::add(const ast::Node& expression) {
  // Node slots released by earlier removals become reusable here: add() is
  // ordered after any matching that could still walk them (engines are
  // serialised per shard; see shared_forest.h).
  forest_.reclaim_quarantine();

  // intern() checks limits before any mutation, so an oversized
  // expression throws here with no state change.
  const SharedForest::InternResult interned = forest_.intern(expression);
  NodeId root = interned.id;
  const std::uint64_t signature = expression_signature(expression);
  if (interned.created && options_.root_subsumption) {
    root = try_alias_equivalent(expression, root, signature);
  }

  const SubscriptionId id = allocate_id();
  attach(id, root, signature);
  ++live_count_;

  if (touched_.capacity() < forest_.node_bound()) {
    touched_.resize(forest_.node_bound());
  }
  return id;
}

NonCanonicalEngine::NodeId NonCanonicalEngine::try_alias_equivalent(
    const ast::Node& expression, NodeId fresh_root, std::uint64_t signature) {
  const auto it = roots_by_sig_.find(signature);
  if (it == roots_by_sig_.end()) return fresh_root;
  std::size_t probes = 0;
  for (const NodeId candidate : it->second) {
    if (candidate == fresh_root) continue;
    if (++probes > options_.max_subsumption_probes) break;
    const ast::NodePtr candidate_ast = forest_.to_ast(candidate);
    // Mutual covering proves semantic equivalence, which is what sharing a
    // *result* node requires; one-directional covering would be unsound.
    if (covers(*candidate_ast, expression, *table_,
               options_.subsumption_budget) &&
        covers(expression, *candidate_ast, *table_,
               options_.subsumption_budget)) {
      forest_.add_ref(candidate);
      forest_.release(fresh_root);
      ++subsumption_hits_;
      return candidate;
    }
  }
  return fresh_root;
}

void NonCanonicalEngine::attach(SubscriptionId id, NodeId root,
                                std::uint64_t signature) {
  SubRecord& record = subs_[id.value()];
  record.root = root;
  record.prev = kNoSub;
  record.live = true;

  const auto [it, first_sub] = root_head_.try_emplace(root, id.value());
  if (!first_sub) {
    record.next = it->second;
    subs_[it->second].prev = id.value();
    it->second = id.value();
    return;
  }
  record.next = kNoSub;
  if (is_root_.size() <= root) is_root_.resize(root + 1, 0);
  is_root_[root] = 1;
  root_sig_.emplace(root, signature);
  roots_by_sig_[signature].push_back(root);
  if (forest_.static_truth(root)) always_roots_.push_back(root);
}

void NonCanonicalEngine::detach(SubscriptionId id) {
  SubRecord& record = subs_[id.value()];
  const NodeId root = record.root;
  if (record.prev != kNoSub) {
    subs_[record.prev].next = record.next;
    if (record.next != kNoSub) subs_[record.next].prev = record.prev;
  } else {
    const auto head = root_head_.find(root);
    NCPS_DASSERT(head != root_head_.end() && head->second == id.value());
    if (record.next != kNoSub) {
      head->second = record.next;
      subs_[record.next].prev = kNoSub;
    } else {
      // Last subscription on this root: it stops being a result root.
      root_head_.erase(head);
      is_root_[root] = 0;
      const auto sig = root_sig_.find(root);
      NCPS_DASSERT(sig != root_sig_.end());
      auto& ring = roots_by_sig_[sig->second];
      ring.erase(std::find(ring.begin(), ring.end(), root));
      if (ring.empty()) roots_by_sig_.erase(sig->second);
      root_sig_.erase(sig);
      if (forest_.static_truth(root)) {
        auto& always = always_roots_;
        always.erase(std::find(always.begin(), always.end(), root));
      }
    }
  }
  forest_.release(root);
}

bool NonCanonicalEngine::remove(SubscriptionId id) {
  if (!id.valid() || id.value() >= subs_.size() || !subs_[id.value()].live) {
    return false;
  }
  detach(id);
  subs_[id.value()] = SubRecord{};
  free_ids_.push_back(id);
  --live_count_;
  return true;
}

void NonCanonicalEngine::match_predicates(
    std::span<const PredicateId> fulfilled, std::size_t event_index,
    const Event& event, MatchSink& sink) {
  match_impl(fulfilled, [&](SubscriptionId sid) {
    sink.on_match(event_index, event, sid);
  });
}

template <typename Emit>
void NonCanonicalEngine::match_impl(std::span<const PredicateId> fulfilled,
                                    Emit&& emit) {
  stats_.reset();
  const std::size_t bound = forest_.node_bound();
  if (touched_.capacity() < bound) touched_.resize(bound);
  if (value_.size() < bound) value_.resize(bound);
  if (is_root_.size() < bound) is_root_.resize(bound, 0);
  touched_.clear();
  frontier_.clear();
  max_rank_touched_ = 0;

  // Seed: fulfilled predicates stamp their leaf nodes true...
  for (const PredicateId pid : fulfilled) {
    const NodeId leaf = forest_.leaf_of(pid);
    if (leaf == SharedForest::kNoNode) continue;
    if (touched_.insert(leaf)) {
      value_[leaf] = 1;
      frontier_.push_back(leaf);
    }
  }
  // ...and flood upward along parent edges: the candidate-reachable
  // frontier is every DAG ancestor of a fulfilled leaf, each visited once
  // however many subscriptions share it.
  for (std::size_t i = 0; i < frontier_.size(); ++i) {
    forest_.for_each_parent(frontier_[i], [&](NodeId parent) {
      if (touched_.insert(parent)) {
        frontier_.push_back(parent);
        const std::uint32_t r = forest_.rank(parent);
        if (r >= rank_buckets_.size()) rank_buckets_.resize(r + 1);
        rank_buckets_[r].push_back(parent);
        max_rank_touched_ = std::max(max_rank_touched_, r);
      }
    });
  }

  // Evaluate the frontier's interior nodes bottom-up (rank order is a
  // topological order: children rank strictly below parents). A child
  // outside the frontier contains no fulfilled predicate, so its value is
  // its precomputed all-false truth.
  const auto value_of = [&](NodeId n) {
    ++stats_.truth_lookups;
    return touched_.contains(n) ? value_[n] != 0 : forest_.static_truth(n);
  };
  for (std::uint32_t r = 1; r <= max_rank_touched_; ++r) {
    for (const NodeId n : rank_buckets_[r]) {
      ++stats_.node_evaluations;
      const std::span<const NodeId> kids = forest_.children(n);
      bool v = false;
      switch (forest_.kind(n)) {
        case ast::NodeKind::And:
          v = true;
          for (const NodeId c : kids) {
            if (!value_of(c)) {
              v = false;
              break;
            }
          }
          break;
        case ast::NodeKind::Or:
          for (const NodeId c : kids) {
            if (value_of(c)) {
              v = true;
              break;
            }
          }
          break;
        case ast::NodeKind::Not:
          v = !value_of(kids.front());
          break;
        case ast::NodeKind::Leaf:
          NCPS_ASSERT(false && "leaves are seeded, never evaluated");
      }
      value_[n] = v ? 1 : 0;
    }
    rank_buckets_[r].clear();
  }

  // Emit: every touched result root whose memoized value is true notifies
  // all subscriptions chained on it...
  const auto emit_root = [&](NodeId root) {
    for (std::uint32_t s = root_head_.find(root)->second; s != kNoSub;
         s = subs_[s].next) {
      ++stats_.candidates;
      emit(SubscriptionId(s));
      ++stats_.matches;
    }
  };
  for (const NodeId n : frontier_) {
    if (is_root_[n] == 0) continue;
    if (value_[n] != 0) {
      emit_root(n);
    } else {
      // Candidates examined but refuted.
      for (std::uint32_t s = root_head_.find(n)->second; s != kNoSub;
           s = subs_[s].next) {
        ++stats_.candidates;
      }
    }
  }
  // ...plus the always-candidate roots the frontier never reached: with no
  // fulfilled predicate below them their static truth (true) stands.
  for (const NodeId root : always_roots_) {
    if (touched_.contains(root)) continue;  // evaluated above
    emit_root(root);
  }
}

void NonCanonicalEngine::compact_storage() {
  FilterEngine::compact_storage();
  forest_.compact_storage();
  subs_.shrink_to_fit();
  free_ids_.shrink_to_fit();
  is_root_.shrink_to_fit();
  always_roots_.shrink_to_fit();
  touched_.shrink_to_fit();
  value_.shrink_to_fit();
  frontier_.shrink_to_fit();
  for (auto& bucket : rank_buckets_) bucket.shrink_to_fit();
  rank_buckets_.shrink_to_fit();
  pred_scratch_.shrink_to_fit();
  for (auto& entry : roots_by_sig_) entry.second.shrink_to_fit();
}

MemoryBreakdown NonCanonicalEngine::memory() const {
  MemoryBreakdown mem;
  mem.add_nested("forest/", forest_.memory());
  // Unsubscription support: each subscription's root reference + chain
  // links (the forest analogue of the paper's footnote-1 association).
  mem.add("unsub_support/subscription_records", vector_bytes(subs_));
  std::size_t attachment = unordered_map_bytes(root_head_) +
                           unordered_map_bytes(root_sig_) +
                           unordered_map_bytes(roots_by_sig_) +
                           vector_bytes(always_roots_) +
                           vector_bytes(is_root_);
  for (const auto& entry : roots_by_sig_) {
    attachment += vector_bytes(entry.second);
  }
  mem.add("root_attachment", attachment);
  mem.add("scratch/touched_set", touched_.memory_bytes());
  mem.add("scratch/node_values", vector_bytes(value_));
  mem.add("scratch/frontier",
          vector_bytes(frontier_) + nested_vector_bytes(rank_buckets_));
  mem.add("scratch/free_ids", vector_bytes(free_ids_));
  mem.add_nested("index/", index_.memory());
  return mem;
}

}  // namespace ncps
