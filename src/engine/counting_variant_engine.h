// The paper's improved counting variant (§3.3).
//
// "In subscription matching we do not compare the whole hit vector and
// subscription-predicate count vector. Instead, in the beginning of step two
// for matching predicates we record all subscriptions they belong to.
// Afterwards, we only compare the entries of these subscriptions" — i.e.
// candidate-only comparison, making the cost depend on the number of
// fulfilled predicates (and their association fan-out) rather than the total
// subscription count. Scalability is unchanged: the transformed subscription
// state still has to fit in memory.
#pragma once

#include "engine/counting_base.h"

namespace ncps {

class CountingVariantEngine final : public CountingBase {
 public:
  explicit CountingVariantEngine(PredicateTable& table,
                                 DnfOptions options = {},
                                 bool support_unsubscription = true)
      : CountingBase(table, options, support_unsubscription) {}

  void match_predicates_impl(std::span<const PredicateId> fulfilled,
                             std::size_t event_index, const Event& event,
                             MatchSink& sink, MatchContext& ctx) const override;

  [[nodiscard]] std::string_view name() const override {
    return "counting-variant";
  }

 private:
  template <typename Emit>
  void match_impl(std::span<const PredicateId> fulfilled, CountingContext& ctx,
                  Emit&& emit) const;
};

}  // namespace ncps
