#include "engine/non_canonical_tree_engine.h"

#include <algorithm>
#include <numeric>

#include "common/contracts.h"

namespace ncps {

SubscriptionId NonCanonicalTreeEngine::allocate_id() {
  if (!free_ids_.empty()) {
    const SubscriptionId id = free_ids_.back();
    free_ids_.pop_back();
    return id;
  }
  const SubscriptionId id(static_cast<std::uint32_t>(subs_.size()));
  subs_.emplace_back();
  locations_.emplace_back();
  return id;
}

void NonCanonicalTreeEngine::validate(const ast::Node& expression,
                                      PredicateTable& /*scratch*/) const {
  // Dry-run the encoder into a scratch buffer: v1 enforces its fixed-width
  // limits by throwing EncodeError, which is the only way add() can fail.
  std::vector<std::byte> scratch_bytes;
  if (encoding_ == TreeEncoding::kV1Paper) {
    (void)encode_tree(expression, scratch_bytes, reorder_);
  } else {
    (void)encode_tree_v2(expression, scratch_bytes, reorder_);
  }
}

SubscriptionId NonCanonicalTreeEngine::add(const ast::Node& expression) {
  const SubscriptionId id = allocate_id();
  SubRecord& record = subs_[id.value()];

  // Encode the tree as the subscriber wrote it — no canonicalisation.
  const std::size_t offset = tree_bytes_.size();
  const std::size_t length =
      encoding_ == TreeEncoding::kV1Paper
          ? encode_tree(expression, tree_bytes_, reorder_)
          : encode_tree_v2(expression, tree_bytes_, reorder_);
  NCPS_ASSERT(offset <= UINT32_MAX && length <= UINT32_MAX);
  locations_[id.value()] =
      Location{static_cast<std::uint32_t>(offset),
               static_cast<std::uint32_t>(length)};

  // Engine-owned references + association entries, one per unique predicate.
  pred_scratch_.clear();
  ast::collect_predicates(expression, pred_scratch_);
  std::sort(pred_scratch_.begin(), pred_scratch_.end());
  pred_scratch_.erase(
      std::unique(pred_scratch_.begin(), pred_scratch_.end()),
      pred_scratch_.end());
  record.unique_predicates = pred_scratch_;
  for (const PredicateId pid : record.unique_predicates) {
    acquire_predicate(pid);
    assoc_.ensure_lists(pid.value() + 1);
    // A predicate id entering this engine for the first time — including a
    // freed id recycled by the table for a structurally different predicate
    // — must have an empty association list, or stale postings from its
    // previous life would resurrect dead candidates.
    NCPS_DASSERT(use_count_[pid.value()] > 1 || assoc_.size(pid.value()) == 0);
    assoc_.add(pid.value(), id.value());
  }

  record.always_candidate = ast::matches_all_false(expression);
  if (record.always_candidate) always_candidates_.push_back(id);

  record.live = true;
  ++live_count_;
  return id;
}

bool NonCanonicalTreeEngine::remove(SubscriptionId id) {
  if (!id.valid() || id.value() >= subs_.size() || !subs_[id.value()].live) {
    return false;
  }
  SubRecord& record = subs_[id.value()];
  for (const PredicateId pid : record.unique_predicates) {
    const bool removed = assoc_.remove(pid.value(), id.value());
    NCPS_ASSERT(removed);  // every registered posting must still be present
    release_predicate(pid);
  }
  if (record.always_candidate) {
    auto& list = always_candidates_;
    list.erase(std::remove(list.begin(), list.end(), id), list.end());
  }
  record = SubRecord{};
  dead_bytes_ += locations_[id.value()].length;
  locations_[id.value()] = Location{};
  free_ids_.push_back(id);
  --live_count_;
  return true;
}

std::unique_ptr<MatchContext> NonCanonicalTreeEngine::make_context() const {
  return std::make_unique<TreeContext>();
}

void NonCanonicalTreeEngine::match_predicates_impl(
    std::span<const PredicateId> fulfilled, std::size_t event_index,
    const Event& event, MatchSink& sink, MatchContext& ctx) const {
  match_impl(fulfilled, static_cast<TreeContext&>(ctx),
             [&](SubscriptionId sid) {
               sink.on_match(event_index, event, sid);
             });
}

template <typename Emit>
void NonCanonicalTreeEngine::match_impl(std::span<const PredicateId> fulfilled,
                                        TreeContext& ctx, Emit&& emit) const {
  if (ctx.truth.capacity() < table_->id_bound()) {
    ctx.truth.resize(table_->id_bound());
  }
  if (ctx.seen_subs.capacity() < subs_.size()) {
    ctx.seen_subs.resize(subs_.size());
  }
  ctx.truth.clear();
  ctx.seen_subs.clear();

  // Mark fulfilled predicates for O(1) truth lookups during evaluation.
  for (const PredicateId pid : fulfilled) {
    if (pid.value() < ctx.truth.capacity()) ctx.truth.insert(pid.value());
  }
  if (stats_enabled_) {
    // Bench-only selectivity statistics (engine state, single-threaded).
    ++events_seen_;
    if (fulfilled_count_.size() < ctx.truth.capacity()) {
      fulfilled_count_.resize(ctx.truth.capacity(), 0);
    }
    for (const PredicateId pid : fulfilled) {
      if (pid.value() < fulfilled_count_.size()) {
        ++fulfilled_count_[pid.value()];
      }
    }
  }

  // Leaf ids inside this engine's encoded trees are always within the truth
  // array (sized to the table's id bound at match start), so the per-leaf
  // lookup can skip bounds checks — it is the innermost operation of
  // subscription matching.
  const EpochSet::View truth_view = ctx.truth.view();
  const auto truth = [truth_view, &ctx](PredicateId pid) {
    ++ctx.stats.truth_lookups;
    return truth_view.contains(pid.value());
  };

  const bool v2 = encoding_ == TreeEncoding::kV2Varint;
  const auto evaluate_candidate = [&](SubscriptionId sid) {
    if (!ctx.seen_subs.insert(sid.value())) return;  // already examined
    ++ctx.stats.candidates;
    const Location loc = locations_[sid.value()];
    const std::span<const std::byte> tree(tree_bytes_.data() + loc.offset,
                                          loc.length);
    ++ctx.stats.tree_evaluations;
    const bool matched =
        v2 ? evaluate_encoded_v2(tree, truth) : evaluate_encoded(tree, truth);
    if (matched) {
      emit(sid);
      ++ctx.stats.matches;
    }
  };

  // Candidate subscriptions: those containing ≥1 fulfilled predicate…
  for (const PredicateId pid : fulfilled) {
    if (pid.value() >= assoc_.list_count()) continue;
    assoc_.for_each(pid.value(), [&](std::uint32_t sid) {
      evaluate_candidate(SubscriptionId(sid));
    });
  }
  // …plus the ones satisfiable with no fulfilled predicate at all.
  for (const SubscriptionId sid : always_candidates_) {
    evaluate_candidate(sid);
  }
}

void NonCanonicalTreeEngine::compact_tree_storage() {
  std::vector<std::byte> compacted;
  compacted.reserve(tree_bytes_.size() - dead_bytes_);
  for (std::uint32_t i = 0; i < subs_.size(); ++i) {
    if (!subs_[i].live) continue;
    Location& loc = locations_[i];
    const std::size_t new_offset = compacted.size();
    compacted.insert(compacted.end(), tree_bytes_.begin() + loc.offset,
                     tree_bytes_.begin() + loc.offset + loc.length);
    loc.offset = static_cast<std::uint32_t>(new_offset);
  }
  tree_bytes_ = std::move(compacted);
  dead_bytes_ = 0;
}

namespace {

/// Estimated probability that a subtree evaluates true, under predicate
/// independence (the usual selectivity assumption).
double subtree_truth_probability(const ast::Node& node,
                                 const std::vector<std::uint32_t>& counts,
                                 std::uint64_t events) {
  switch (node.kind) {
    case ast::NodeKind::Leaf: {
      if (events == 0 || node.pred.value() >= counts.size()) return 0.5;
      return static_cast<double>(counts[node.pred.value()]) /
             static_cast<double>(events);
    }
    case ast::NodeKind::Not:
      return 1.0 -
             subtree_truth_probability(*node.children.front(), counts, events);
    case ast::NodeKind::And: {
      double p = 1.0;
      for (const auto& c : node.children) {
        p *= subtree_truth_probability(*c, counts, events);
      }
      return p;
    }
    case ast::NodeKind::Or: {
      double p = 1.0;
      for (const auto& c : node.children) {
        p *= 1.0 - subtree_truth_probability(*c, counts, events);
      }
      return 1.0 - p;
    }
  }
  return 0.5;
}

void order_children_by_selectivity(ast::Node& node,
                                   const std::vector<std::uint32_t>& counts,
                                   std::uint64_t events) {
  for (auto& c : node.children) {
    order_children_by_selectivity(*c, counts, events);
  }
  if (node.kind != ast::NodeKind::And && node.kind != ast::NodeKind::Or) {
    return;
  }
  std::vector<double> prob(node.children.size());
  for (std::size_t i = 0; i < node.children.size(); ++i) {
    prob[i] = subtree_truth_probability(*node.children[i], counts, events);
  }
  std::vector<std::uint32_t> order(node.children.size());
  std::iota(order.begin(), order.end(), 0u);
  // AND short-circuits on the first false child → try the least-likely-true
  // first; OR short-circuits on the first true child → most-likely first.
  const bool ascending = node.kind == ast::NodeKind::And;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::uint32_t a, std::uint32_t b) {
                     return ascending ? prob[a] < prob[b] : prob[a] > prob[b];
                   });
  std::vector<ast::NodePtr> sorted;
  sorted.reserve(node.children.size());
  for (const std::uint32_t i : order) {
    sorted.push_back(std::move(node.children[i]));
  }
  node.children = std::move(sorted);
}

}  // namespace

void NonCanonicalTreeEngine::reorder_trees_by_selectivity() {
  std::vector<std::byte> rewritten;
  rewritten.reserve(tree_bytes_.size() - dead_bytes_);
  for (std::uint32_t i = 0; i < subs_.size(); ++i) {
    if (!subs_[i].live) continue;
    Location& loc = locations_[i];
    const std::span<const std::byte> old(tree_bytes_.data() + loc.offset,
                                         loc.length);
    ast::NodePtr tree = encoding_ == TreeEncoding::kV1Paper
                            ? decode_tree(old)
                            : decode_tree_v2(old);
    order_children_by_selectivity(*tree, fulfilled_count_, events_seen_);
    const std::size_t offset = rewritten.size();
    const std::size_t length =
        encoding_ == TreeEncoding::kV1Paper
            ? encode_tree(*tree, rewritten, ReorderPolicy::kNone)
            : encode_tree_v2(*tree, rewritten, ReorderPolicy::kNone);
    loc = Location{static_cast<std::uint32_t>(offset),
                   static_cast<std::uint32_t>(length)};
  }
  tree_bytes_ = std::move(rewritten);
  dead_bytes_ = 0;
}

void NonCanonicalTreeEngine::compact_storage() {
  FilterEngine::compact_storage();
  compact_tree_storage();
  tree_bytes_.shrink_to_fit();
  locations_.shrink_to_fit();
  subs_.shrink_to_fit();
  for (auto& record : subs_) record.unique_predicates.shrink_to_fit();
  free_ids_.shrink_to_fit();
  assoc_.shrink_to_fit();
  always_candidates_.shrink_to_fit();
  pred_scratch_.shrink_to_fit();
}

MemoryBreakdown NonCanonicalTreeEngine::memory() const {
  MemoryBreakdown mem;
  mem.add("encoded_trees", vector_bytes(tree_bytes_));
  mem.add("subscription_location_table", vector_bytes(locations_));
  mem.add("association_table", assoc_.memory_bytes());
  mem.add("always_candidate_list", vector_bytes(always_candidates_));
  // Unsubscription support: the subscription → predicates association the
  // paper discusses in §2.1/footnote 1.
  std::size_t record_bytes = subs_.capacity() * sizeof(SubRecord);
  for (const auto& r : subs_) {
    record_bytes += r.unique_predicates.capacity() * sizeof(PredicateId);
  }
  mem.add("unsub_support/subscription_predicates", record_bytes);
  // Match scratch is context-owned; report the legacy-path default context.
  if (const MatchContext* ctx = default_context_if_any()) {
    ctx->add_memory(mem);
  }
  mem.add("scratch/free_ids", vector_bytes(free_ids_));
  mem.add_nested("index/", index_.memory());
  return mem;
}

}  // namespace ncps
