#include "engine/counting_engine.h"

#include <algorithm>

namespace ncps {

void CountingEngine::match_predicates_impl(
    std::span<const PredicateId> fulfilled, std::size_t event_index,
    const Event& event, MatchSink& sink) {
  match_impl(fulfilled, [&](SubscriptionId sid) {
    sink.on_match(event_index, event, sid);
  });
}

template <typename Emit>
void CountingEngine::match_impl(std::span<const PredicateId> fulfilled,
                                Emit&& emit) {
  matched_subs_.clear();

  // Step 1: increment hit counters along the association lists.
  for (const PredicateId pid : fulfilled) {
    if (pid.value() >= assoc_.list_count()) continue;
    assoc_.for_each(pid.value(), [&](Tid tid) {
      ++hits_[tid];
      ++stats_.hit_increments;
    });
  }

  // Step 2: the defining full scan — compare every registered transformed
  // subscription's hit count against its required count.
  const std::size_t tid_count = required_.size();
  for (Tid tid = 0; tid < tid_count; ++tid) {
    ++stats_.counter_comparisons;
    if (required_[tid] != kDeadTid && hits_[tid] == required_[tid]) {
      if (matched_subs_.insert(owner_[tid])) {
        emit(SubscriptionId(owner_[tid]));
        ++stats_.matches;
      }
    }
  }
  stats_.candidates = tid_count;

  // Reset the hit vector for the next event (also linear — part of why the
  // original algorithm cannot escape O(total transformed subscriptions)).
  std::fill(hits_.begin(), hits_.end(), std::uint8_t{0});
}

}  // namespace ncps
