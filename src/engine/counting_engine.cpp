#include "engine/counting_engine.h"

#include <algorithm>

namespace ncps {

void CountingEngine::match_predicates_impl(
    std::span<const PredicateId> fulfilled, std::size_t event_index,
    const Event& event, MatchSink& sink, MatchContext& ctx) const {
  match_impl(fulfilled, static_cast<CountingContext&>(ctx),
             [&](SubscriptionId sid) {
               sink.on_match(event_index, event, sid);
             });
}

template <typename Emit>
void CountingEngine::match_impl(std::span<const PredicateId> fulfilled,
                                CountingContext& ctx, Emit&& emit) const {
  const std::size_t tid_count = required_.size();
  // New tids since this context last matched start at zero, matching the
  // all-zero-between-events invariant the existing entries already satisfy.
  if (ctx.hits.size() < tid_count) ctx.hits.resize(tid_count, 0);
  if (ctx.matched_subs.capacity() < subs_.size()) {
    ctx.matched_subs.resize(subs_.size());
  }
  ctx.matched_subs.clear();

  // Step 1: increment hit counters along the association lists.
  for (const PredicateId pid : fulfilled) {
    if (pid.value() >= assoc_.list_count()) continue;
    assoc_.for_each(pid.value(), [&](Tid tid) {
      ++ctx.hits[tid];
      ++ctx.stats.hit_increments;
    });
  }

  // Step 2: the defining full scan — compare every registered transformed
  // subscription's hit count against its required count.
  for (Tid tid = 0; tid < tid_count; ++tid) {
    ++ctx.stats.counter_comparisons;
    if (required_[tid] != kDeadTid && ctx.hits[tid] == required_[tid]) {
      if (ctx.matched_subs.insert(owner_[tid])) {
        emit(SubscriptionId(owner_[tid]));
        ++ctx.stats.matches;
      }
    }
  }
  ctx.stats.candidates += tid_count;

  // Reset the hit vector for the next event (also linear — part of why the
  // original algorithm cannot escape O(total transformed subscriptions)).
  std::fill(ctx.hits.begin(), ctx.hits.end(), std::uint8_t{0});
}

}  // namespace ncps
