#include "engine/counting_base.h"

namespace ncps {

SubscriptionId CountingBase::allocate_id() {
  if (!free_ids_.empty()) {
    const SubscriptionId id = free_ids_.back();
    free_ids_.pop_back();
    return id;
  }
  const SubscriptionId id(static_cast<std::uint32_t>(subs_.size()));
  subs_.emplace_back();
  return id;
}

CountingBase::Tid CountingBase::allocate_tid() {
  if (!free_tids_.empty()) {
    const Tid tid = free_tids_.back();
    free_tids_.pop_back();
    return tid;
  }
  const Tid tid = static_cast<Tid>(required_.size());
  required_.push_back(kDeadTid);
  owner_.push_back(0);
  return tid;
}

std::unique_ptr<MatchContext> CountingBase::make_context() const {
  return std::make_unique<CountingContext>();
}

void CountingBase::validate(const ast::Node& expression,
                            PredicateTable& scratch) const {
  ast::Expr nnf_holder;
  const Dnf dnf = canonicalize(expression, scratch, nnf_holder, options_);
  for (const Disjunct& d : dnf.disjuncts) {
    if (d.size() > kMaxPredicatesPerDisjunct) {
      throw SubscriptionTooLargeError(d.size());
    }
  }
}

SubscriptionId CountingBase::add(const ast::Node& expression) {
  // Canonicalise: the transformation this engine family cannot avoid.
  ast::Expr nnf_holder;
  Dnf dnf = canonicalize(expression, *table_, nnf_holder, options_);
  NCPS_ASSERT(!dnf.disjuncts.empty());
  for (const Disjunct& d : dnf.disjuncts) {
    if (d.size() > kMaxPredicatesPerDisjunct) {
      throw SubscriptionTooLargeError(d.size());
    }
  }

  const SubscriptionId id = allocate_id();
  SubRecord& record = subs_[id.value()];
  record.tids.reserve(dnf.disjuncts.size());

  for (Disjunct& d : dnf.disjuncts) {
    const Tid tid = allocate_tid();
    required_[tid] = static_cast<std::uint8_t>(d.size());
    owner_[tid] = id.value();
    for (const PredicateId pid : d) {
      acquire_predicate(pid);
      assoc_.ensure_lists(pid.value() + 1);
      // First engine-local use of this id (possibly a recycled one): stale
      // postings from its previous life must not have survived removal.
      NCPS_DASSERT(use_count_[pid.value()] > 1 ||
                   assoc_.size(pid.value()) == 0);
      assoc_.add(pid.value(), tid);
    }
    ++live_tids_;
    if (support_unsubscription_) {
      // Only removal needs the tid list and the per-tid predicate lists;
      // the paper's configuration stores neither.
      record.tids.push_back(tid);
      record.disjuncts.push_back(std::move(d));
    }
  }

  record.live = true;
  ++live_count_;
  return id;
}

bool CountingBase::remove(SubscriptionId id) {
  // The paper's configuration does not store the subscription→predicate
  // association needed here (§3.3: "without the support of unsubscriptions").
  if (!support_unsubscription_) return false;
  if (!id.valid() || id.value() >= subs_.size() || !subs_[id.value()].live) {
    return false;
  }
  SubRecord& record = subs_[id.value()];
  for (std::size_t i = 0; i < record.tids.size(); ++i) {
    const Tid tid = record.tids[i];
    for (const PredicateId pid : record.disjuncts[i]) {
      const bool removed = assoc_.remove(pid.value(), tid);
      NCPS_ASSERT(removed);  // every registered posting must still be present
      release_predicate(pid);
    }
    required_[tid] = kDeadTid;
    free_tids_.push_back(tid);
    --live_tids_;
  }
  record = SubRecord{};
  free_ids_.push_back(id);
  --live_count_;
  return true;
}

void CountingBase::compact_storage() {
  FilterEngine::compact_storage();
  required_.shrink_to_fit();
  owner_.shrink_to_fit();
  assoc_.shrink_to_fit();
  subs_.shrink_to_fit();
  for (auto& record : subs_) {
    record.tids.shrink_to_fit();
    record.disjuncts.shrink_to_fit();
    for (auto& d : record.disjuncts) d.shrink_to_fit();
  }
  free_ids_.shrink_to_fit();
  free_tids_.shrink_to_fit();
}

MemoryBreakdown CountingBase::memory() const {
  MemoryBreakdown mem;
  mem.add("required_count_vector", vector_bytes(required_));
  mem.add("owner_table", vector_bytes(owner_));
  mem.add("association_table", assoc_.memory_bytes());
  std::size_t record_bytes = subs_.capacity() * sizeof(SubRecord);
  for (const auto& r : subs_) {
    record_bytes += vector_bytes(r.tids);
    record_bytes += nested_vector_bytes(r.disjuncts);
  }
  mem.add("unsub_support/subscription_disjuncts", record_bytes);
  // The hit vector and the match scratch are context-owned (one per
  // matching thread); report the engine's own default context only.
  if (const MatchContext* ctx = default_context_if_any()) {
    ctx->add_memory(mem);
  }
  mem.add("scratch/free_ids", vector_bytes(free_ids_));
  mem.add("scratch/free_tids", vector_bytes(free_tids_));
  mem.add_nested("index/", index_.memory());
  return mem;
}

}  // namespace ncps
