// Compact posting lists for the predicate→subscription association tables.
//
// The paper's baseline implementation stresses compactness: "we choose an
// implementation similar to the list-based one in [2] to require as little
// memory as possible ... we use arrays instead of a subscription list"
// (§3.3, footnote 2). A std::vector per predicate costs a 24-byte header
// plus a malloc block even for the one-entry lists that dominate the
// unique-predicate workload — enough overhead to bury the engines' actual
// memory difference.
//
// PostingStore packs all lists into two flat arrays:
//   - a 12-byte head per list: count, the first item inline (most lists in
//     the paper's workload have exactly one entry — no chunk needed at all),
//     and the head of an overflow chain;
//   - a pool of fixed-size chunks (8 items + next, 36 bytes) shared by all
//     lists, recycled through a free list on removal.
//
// Supports the three operations the engines need: append, unordered remove
// (swap with last), and iteration. Not thread-safe, like the engines.
#pragma once

#include <cstdint>
#include <vector>

#include "common/contracts.h"

namespace ncps {

class PostingStore {
 public:
  /// Grow the universe of list ids to [0, count). Existing lists keep their
  /// contents.
  void ensure_lists(std::size_t count) {
    if (heads_.size() < count) heads_.resize(count);
  }

  [[nodiscard]] std::size_t list_count() const { return heads_.size(); }

  [[nodiscard]] std::uint32_t size(std::uint32_t list) const {
    NCPS_DASSERT(list < heads_.size());
    return heads_[list].count;
  }

  void add(std::uint32_t list, std::uint32_t item) {
    NCPS_DASSERT(list < heads_.size());
    Head& head = heads_[list];
    if (head.count == 0) {
      head.first = item;
      head.count = 1;
      return;
    }
    const std::uint32_t position = head.count - 1;  // index among chunk items
    const std::uint32_t chunk_slot = position % kChunkItems;
    if (chunk_slot == 0) {
      // A fresh chunk is needed at the front of the chain; chains grow at
      // the head so append never walks the list.
      const std::uint32_t chunk = allocate_chunk();
      pool_[chunk].next = head.overflow;
      head.overflow = chunk;
    }
    pool_[head.overflow].items[chunk_slot] = item;
    ++head.count;
  }

  /// Remove one occurrence of `item` (order not preserved). Returns false if
  /// absent.
  bool remove(std::uint32_t list, std::uint32_t item) {
    NCPS_DASSERT(list < heads_.size());
    Head& head = heads_[list];
    if (head.count == 0) return false;

    // Locate the item: inline slot, then the overflow chain (newest first).
    std::uint32_t* found = nullptr;
    if (head.first == item) {
      found = &head.first;
    } else {
      const std::uint32_t newest_count = (head.count - 1) % kChunkItems == 0
                                             ? kChunkItems
                                             : (head.count - 1) % kChunkItems;
      std::uint32_t chunk = head.overflow;
      std::uint32_t in_chunk = newest_count;
      while (chunk != kNone && found == nullptr) {
        for (std::uint32_t i = 0; i < in_chunk; ++i) {
          if (pool_[chunk].items[i] == item) {
            found = &pool_[chunk].items[i];
            break;
          }
        }
        chunk = pool_[chunk].next;
        in_chunk = kChunkItems;  // all older chunks are full
      }
    }
    if (found == nullptr) return false;

    // Swap the last item in, then shrink.
    *found = last_item(head);
    --head.count;
    if (head.count > 0 && (head.count - 1) % kChunkItems == 0) {
      // The newest chunk just emptied: unlink and recycle it.
      const std::uint32_t chunk = head.overflow;
      head.overflow = pool_[chunk].next;
      free_chunk(chunk);
    }
    return true;
  }

  /// Invoke fn(item) for every posting in the list.
  template <typename Fn>
  void for_each(std::uint32_t list, Fn&& fn) const {
    NCPS_DASSERT(list < heads_.size());
    const Head& head = heads_[list];
    if (head.count == 0) return;
    fn(head.first);
    std::uint32_t remaining = head.count - 1;
    std::uint32_t in_chunk = remaining % kChunkItems == 0
                                 ? kChunkItems
                                 : remaining % kChunkItems;
    std::uint32_t chunk = head.overflow;
    while (remaining > 0) {
      NCPS_DASSERT(chunk != kNone);
      for (std::uint32_t i = 0; i < in_chunk; ++i) fn(pool_[chunk].items[i]);
      remaining -= in_chunk;
      chunk = pool_[chunk].next;
      in_chunk = kChunkItems;
    }
  }

  [[nodiscard]] std::size_t memory_bytes() const {
    return heads_.capacity() * sizeof(Head) + pool_.capacity() * sizeof(Chunk) +
           free_chunks_.capacity() * sizeof(std::uint32_t);
  }

  /// Aggregate accounting (the phase-2 analogue of PostingList::Stats):
  /// resident chunked bytes vs what one std::vector per non-empty list
  /// would hold. BENCH_memory reports both layers' ratios side by side.
  struct Stats {
    std::size_t lists = 0;  ///< non-empty lists
    std::size_t entries = 0;
    std::size_t bytes = 0;
    std::size_t baseline_bytes = 0;
  };

  [[nodiscard]] Stats stats() const {
    Stats s;
    for (const Head& head : heads_) {
      if (head.count == 0) continue;
      ++s.lists;
      s.entries += head.count;
      s.baseline_bytes += sizeof(std::vector<std::uint32_t>) +
                          head.count * sizeof(std::uint32_t);
    }
    s.bytes = memory_bytes();
    return s;
  }

  /// Release growth slack (steady-state footprint after a bulk load).
  void shrink_to_fit() {
    heads_.shrink_to_fit();
    pool_.shrink_to_fit();
    free_chunks_.shrink_to_fit();
  }

 private:
  static constexpr std::uint32_t kChunkItems = 8;
  static constexpr std::uint32_t kNone = UINT32_MAX;

  struct Head {
    std::uint32_t count = 0;
    std::uint32_t first = 0;
    std::uint32_t overflow = kNone;
  };

  struct Chunk {
    std::uint32_t items[kChunkItems];
    std::uint32_t next = kNone;
  };

  [[nodiscard]] std::uint32_t last_item(const Head& head) const {
    if (head.count == 1) return head.first;
    const std::uint32_t slot = (head.count - 2) % kChunkItems;
    return pool_[head.overflow].items[slot];
  }

  std::uint32_t allocate_chunk() {
    if (!free_chunks_.empty()) {
      const std::uint32_t chunk = free_chunks_.back();
      free_chunks_.pop_back();
      pool_[chunk].next = kNone;
      return chunk;
    }
    pool_.emplace_back();
    return static_cast<std::uint32_t>(pool_.size() - 1);
  }

  void free_chunk(std::uint32_t chunk) { free_chunks_.push_back(chunk); }

  std::vector<Head> heads_;
  std::vector<Chunk> pool_;
  std::vector<std::uint32_t> free_chunks_;
};

}  // namespace ncps
