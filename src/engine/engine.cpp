#include "engine/engine.h"

namespace ncps {

namespace {

/// Adapts the streaming MatchSink interface back to vector accumulation for
/// the legacy entry points.
class VectorSink final : public MatchSink {
 public:
  explicit VectorSink(std::vector<SubscriptionId>& out) : out_(&out) {}

  void on_match(std::size_t /*event_index*/, const Event& /*event*/,
                SubscriptionId subscription) override {
    out_->push_back(subscription);
  }

 private:
  std::vector<SubscriptionId>* out_;
};

}  // namespace

void FilterEngine::finish_bulk_load(ThreadPool* pool) {
  NCPS_EXPECTS(bulk_loading_);
  bulk_loading_ = false;
  std::vector<PredicateIndex::BulkEntry> entries;
  entries.reserve(pending_ids_.size());
  for (const PredicateId id : pending_ids_) {
    pending_index_add_[id.value()] = 0;
    // Acquired-then-fully-released predicates were never indexed; skip them.
    if (use_count_[id.value()] > 0) {
      entries.push_back(PredicateIndex::BulkEntry{id, &table_->get(id)});
    }
  }
  pending_ids_.clear();
  pending_index_add_.clear();
  index_.bulk_load(entries, pool);
}

void FilterEngine::match_predicates(std::span<const PredicateId> fulfilled,
                                    std::vector<SubscriptionId>& out) {
  VectorSink sink(out);
  const Event no_event;  // phase-2-only callers carry no event context
  match_predicates(fulfilled, 0, no_event, sink);
}

void FilterEngine::match(const Event& event,
                         std::vector<SubscriptionId>& out) {
  fulfilled_scratch_.clear();
  index_.match(event, *table_, fulfilled_scratch_);
  VectorSink sink(out);
  match_predicates(fulfilled_scratch_, 0, event, sink);
}

void FilterEngine::match_batch(std::span<const Event> events,
                               MatchSink& sink) {
  batch_fulfilled_.clear();
  batch_offsets_.clear();
  index_.match_batch(events, *table_, batch_fulfilled_, batch_offsets_);
  for (std::size_t i = 0; i < events.size(); ++i) {
    const std::span<const PredicateId> fulfilled(
        batch_fulfilled_.data() + batch_offsets_[i],
        batch_offsets_[i + 1] - batch_offsets_[i]);
    match_predicates(fulfilled, i, events[i], sink);
  }
}

}  // namespace ncps
