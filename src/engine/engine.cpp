#include "engine/engine.h"

namespace ncps {

namespace {

/// Adapts the streaming MatchSink interface back to vector accumulation for
/// the legacy entry points.
class VectorSink final : public MatchSink {
 public:
  explicit VectorSink(std::vector<SubscriptionId>& out) : out_(&out) {}

  void on_match(std::size_t /*event_index*/, const Event& /*event*/,
                SubscriptionId subscription) override {
    out_->push_back(subscription);
  }

 private:
  std::vector<SubscriptionId>* out_;
};

}  // namespace

void FilterEngine::finish_bulk_load(ThreadPool* pool) {
  NCPS_EXPECTS(bulk_loading_);
  bulk_loading_ = false;
  std::vector<PredicateIndex::BulkEntry> entries;
  entries.reserve(pending_ids_.size());
  for (const PredicateId id : pending_ids_) {
    pending_index_add_[id.value()] = 0;
    // Acquired-then-fully-released predicates were never indexed; skip them.
    if (use_count_[id.value()] > 0) {
      entries.push_back(PredicateIndex::BulkEntry{id, &table_->get(id)});
    }
  }
  pending_ids_.clear();
  pending_index_add_.clear();
  index_.bulk_load(entries, pool);
}

void FilterEngine::match_range(std::span<const Event> events,
                               std::size_t first, std::size_t last,
                               MatchSink& sink, MatchContext& ctx) const {
  NCPS_EXPECTS(first <= last && last <= events.size());
  if (first == last) return;
  const std::span<const Event> range = events.subspan(first, last - first);
  ctx.fulfilled.clear();
  ctx.offsets.clear();
  index_.match_batch(range, *table_, ctx.fulfilled, ctx.offsets);
  for (std::size_t i = 0; i < range.size(); ++i) {
    const std::span<const PredicateId> fulfilled(
        ctx.fulfilled.data() + ctx.offsets[i],
        ctx.offsets[i + 1] - ctx.offsets[i]);
    // Event indexes reported to the sink are batch-global: chunked tasks on
    // different workers all address the same per-event merge buffers.
    match_predicates(fulfilled, first + i, range[i], sink, ctx);
  }
}

void FilterEngine::match_predicates(std::span<const PredicateId> fulfilled,
                                    std::vector<SubscriptionId>& out) {
  VectorSink sink(out);
  const Event no_event;  // phase-2-only callers carry no event context
  match_predicates(fulfilled, 0, no_event, sink);
}

void FilterEngine::match(const Event& event,
                         std::vector<SubscriptionId>& out) {
  MatchContext& ctx = default_context();
  ctx.fulfilled.clear();
  ctx.offsets.clear();
  index_.match(event, *table_, ctx.fulfilled);
  VectorSink sink(out);
  match_predicates(ctx.fulfilled, 0, event, sink);
}

void FilterEngine::match_batch(std::span<const Event> events,
                               MatchSink& sink) {
  MatchContext& ctx = default_context();
  ctx.fulfilled.clear();
  ctx.offsets.clear();
  index_.match_batch(events, *table_, ctx.fulfilled, ctx.offsets);
  for (std::size_t i = 0; i < events.size(); ++i) {
    const std::span<const PredicateId> fulfilled(
        ctx.fulfilled.data() + ctx.offsets[i],
        ctx.offsets[i + 1] - ctx.offsets[i]);
    // Route through the legacy per-event wrapper so last_stats() stays
    // per-event and cumulative_stats() grows — metrics() on the
    // single-threaded path reads engine cumulative totals only.
    match_predicates(fulfilled, i, events[i], sink);
  }
}

}  // namespace ncps
