#include "engine/engine.h"

namespace ncps {

void FilterEngine::match_predicates(std::span<const PredicateId> fulfilled,
                                    std::size_t event_index,
                                    const Event& event, MatchSink& sink) {
  sink_adapter_scratch_.clear();
  match_predicates(fulfilled, sink_adapter_scratch_);
  for (const SubscriptionId id : sink_adapter_scratch_) {
    sink.on_match(event_index, event, id);
  }
}

void FilterEngine::match_batch(std::span<const Event> events,
                               MatchSink& sink) {
  batch_fulfilled_.clear();
  batch_offsets_.clear();
  index_.match_batch(events, *table_, batch_fulfilled_, batch_offsets_);
  for (std::size_t i = 0; i < events.size(); ++i) {
    const std::span<const PredicateId> fulfilled(
        batch_fulfilled_.data() + batch_offsets_[i],
        batch_offsets_[i + 1] - batch_offsets_[i]);
    match_predicates(fulfilled, i, events[i], sink);
  }
}

}  // namespace ncps
