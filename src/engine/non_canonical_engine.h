// The non-canonical filtering engine (paper §3.2), forest-backed.
//
// Subscriptions stay exactly as written — no DNF is ever built — but unlike
// the paper's prototype (engine/non_canonical_tree_engine.h), which stores
// and evaluates one encoded byte tree per subscription, this engine interns
// every subscription into a shared-subexpression DAG
// (subscription/shared_forest.h):
//
//   - each subscription is one root reference into the forest; structurally
//     identical subscriptions (and identical subtrees of different
//     subscriptions) are stored once, refcounted;
//   - phase 2 walks *upward* from the fulfilled predicates' leaf nodes along
//     the DAG's parent edges, collecting the candidate-reachable frontier,
//     and evaluates the frontier's interior nodes exactly once each, in
//     topological (rank) order, memoizing node truth in an epoch-stamped
//     array. A subtree shared by 10k subscriptions costs one evaluation per
//     event instead of 10k. Nodes outside the frontier contain no fulfilled
//     predicate, so their value is their precomputed all-false truth;
//   - roots whose expression is satisfiable with zero fulfilled predicates
//     (static truth = true, e.g. `not a == 1`) live on an always-candidate
//     list and match whenever the frontier does not reach (and refute) them;
//   - an opt-in normalisation ladder (Options::normalisation): at
//     SortedChildren the forest interns AND/OR children in canonical order,
//     so commuted forms (`a AND b` vs `b AND a`) hash-cons to one node by
//     identity; each subscription keeps a per-root evaluation permutation
//     so subscription_ast() reconstructs what the subscriber wrote;
//   - an optional root-subsumption fast path (covering.h): when a
//     structurally *new* root arrives, existing roots over the same
//     predicate set are probed for mutual covering — a proven-equivalent
//     pair (e.g. `a == 1 and b == 2` vs `b == 2 and a == 1`) shares one
//     result node outright, so the newcomer adds no forest state at all;
//   - covering-based *partial* sharing (Options::partial_sharing): a new
//     root propositionally covered by an existing root borrows that donor's
//     memoized truth as a pre-filter — donor false means the borrower
//     cannot match, so its candidate chain is never scanned, and a
//     borrower nothing else consumes skips its own evaluation too. The
//     borrower refcounts its donor, so a donor node outlives every
//     borrower (quarantine rules unchanged).
//
// Unsubscription releases the root reference; the forest cascades refcount
// decrements and quarantines fully released node slots until the next add()
// (see shared_forest.h for why that, combined with the broker's shard
// serialisation and generation-fence quarantine, means concurrent matching
// never observes a recycled node).
#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/epoch_set.h"
#include "engine/engine.h"
#include "subscription/dnf.h"
#include "subscription/shared_forest.h"

namespace ncps {

struct NonCanonicalEngineOptions {
  /// Forest normalisation level. SortedChildren interns AND/OR children in
  /// canonical order so commuted forms share one node; each subscription
  /// keeps a per-root evaluation permutation, so subscription_ast() still
  /// returns the expression exactly as written (DESIGN.md §1e).
  Normalisation normalisation = Normalisation::None;
  /// Probe structurally new roots against same-signature roots for
  /// *mutual* covering; equivalent pairs share one result node.
  bool root_subsumption = true;
  /// Bounds each covering probe's canonicalisation (overflow = "cannot
  /// prove", never unsound).
  DnfOptions subsumption_budget{};
  /// Equivalence probes per add (only on predicate-signature collisions).
  std::size_t max_subsumption_probes = 4;
  /// Covering-based *partial* sharing: a structurally new root that is
  /// propositionally covered by an existing root (the donor) gates its
  /// candidate emission on the donor's memoized truth — donor false means
  /// the borrower cannot match, so its candidate chain is never scanned
  /// and, when nothing else consumes the borrower's node, its evaluation
  /// is skipped outright. NOT-bearing expressions never participate
  /// (complement literals diverge from NOT on absent attributes;
  /// DESIGN.md §1f).
  bool partial_sharing = true;
  /// Donor candidates *examined* per add (skips included, so an add never
  /// walks an unbounded index list); only candidates that survive the
  /// cheap filters pay a covering proof.
  std::size_t max_partial_probes = 4;
};

class NonCanonicalEngine final : public FilterEngine {
 public:
  using Options = NonCanonicalEngineOptions;

  explicit NonCanonicalEngine(PredicateTable& table, Options options = {});

  SubscriptionId add(const ast::Node& expression) override;
  bool remove(SubscriptionId id) override;
  void validate(const ast::Node& expression,
                PredicateTable& scratch) const override;
  [[nodiscard]] std::unique_ptr<MatchContext> make_context() const override;
  void match_predicates_impl(std::span<const PredicateId> fulfilled,
                             std::size_t event_index, const Event& event,
                             MatchSink& sink, MatchContext& ctx) const override;

  [[nodiscard]] std::size_t subscription_count() const override {
    return live_count_;
  }
  [[nodiscard]] MemoryBreakdown memory() const override;
  [[nodiscard]] std::string_view name() const override {
    return "non-canonical";
  }
  void compact_storage() override;

  /// Forest-structural snapshots: the predicate table, the hash-consed DAG
  /// and every subscription's root attachment round-trip byte-exactly, so
  /// recovery skips re-parsing and re-interning (storage/snapshot.h).
  [[nodiscard]] bool supports_state_snapshot() const override { return true; }
  void prepare_snapshot() override;
  void save_state(storage::Writer& w) const override;
  void load_state(storage::Reader& r, std::span<const AttributeId> attr_remap,
                  ThreadPool* pool) override;
  [[nodiscard]] bool owns_subscription(SubscriptionId id) const override {
    return id.valid() && id.value() < subs_.size() && subs_[id.value()].live;
  }

  /// The underlying DAG, for inspection (tests, benches).
  [[nodiscard]] const SharedForest& forest() const { return forest_; }
  /// Distinct result roots currently attached to subscriptions.
  [[nodiscard]] std::size_t distinct_roots() const {
    return root_head_.size();
  }
  /// Subscriptions that aliased onto an equivalent (non-identical) root via
  /// the covering fast path.
  [[nodiscard]] std::uint64_t subsumption_hits() const {
    return subsumption_hits_;
  }
  /// Roots currently borrowing a donor's truth via partial sharing.
  [[nodiscard]] std::size_t partial_shares() const { return live_borrowers_; }
  /// The subscription's expression exactly as written (the per-root
  /// evaluation permutation undoes SortedChildren interning). Null for
  /// unknown/removed ids; subscriptions aliased onto an equivalent root by
  /// the subsumption fast path report that root's stored form instead.
  [[nodiscard]] ast::NodePtr subscription_ast(SubscriptionId id) const;

  /// Test hook: jump the per-event scratch epoch to its maximum so the next
  /// match (through the legacy default-context entry points) wraps the epoch
  /// counter (regression surface for stale-truth leaks across the wrap).
  void force_scratch_epoch_wrap();

 protected:
  /// Route the forest's quarantine through the broker's epoch domain: node
  /// slots retired by remove() re-enter the free list only after every
  /// reader pinned at retirement time has unpinned (shared_forest.h).
  void on_epoch_domain_changed(EpochDomain* domain) override {
    forest_.set_reclaim_domain(domain);
  }

 private:
  using NodeId = SharedForest::NodeId;
  static constexpr std::uint32_t kNoSub = 0xffffffffu;

  /// Per-thread match scratch (epoch-cleared / rank-bucketed,
  /// allocation-free once warm). One per matching thread; the const match
  /// path touches nothing outside its context.
  struct ForestContext final : MatchContext {
    EpochSet touched;                 // frontier membership, by node id
    std::vector<std::uint8_t> value;  // node truth, valid iff touched
    std::vector<NodeId> frontier;     // touched nodes, discovery order
    // Topological order by counting sort: interior frontier nodes bucketed
    // by rank (ranks are tree heights — single digits on real workloads,
    // so this beats sorting (rank, node) keys per event).
    std::vector<std::vector<NodeId>> rank_buckets;
    std::uint32_t max_rank_touched = 0;

    void compact() override {
      MatchContext::compact();
      touched.shrink_to_fit();
      value.shrink_to_fit();
      frontier.shrink_to_fit();
      for (auto& bucket : rank_buckets) bucket.shrink_to_fit();
      rank_buckets.shrink_to_fit();
    }

    void add_memory(MemoryBreakdown& mem) const override {
      MatchContext::add_memory(mem);
      mem.add("scratch/touched_set", touched.memory_bytes());
      mem.add("scratch/node_values", vector_bytes(value));
      mem.add("scratch/frontier",
              vector_bytes(frontier) + nested_vector_bytes(rank_buckets));
    }
  };

  struct SubRecord {
    NodeId root = SharedForest::kNoNode;
    std::uint32_t next = kNoSub;  ///< intrusive chain of same-root subs
    std::uint32_t prev = kNoSub;
    bool live = false;
    /// Evaluation permutation mapping the written child order onto the
    /// root's stored (sorted) order; empty = identity (Normalisation::None,
    /// or a subsumption-aliased root whose written form is not this node).
    std::vector<std::uint32_t> perm;
  };

  SubscriptionId allocate_id();
  void attach(SubscriptionId id, NodeId root, std::uint64_t signature);
  void detach(SubscriptionId id);
  [[nodiscard]] NodeId try_alias_equivalent(const ast::Node& expression,
                                            NodeId fresh_root,
                                            std::uint64_t signature);
  void try_adopt_donor(NodeId root, const ast::Node& expression);
  [[nodiscard]] bool root_contains_not(NodeId root) const;
  void collect_root_predicates(NodeId root,
                               std::vector<PredicateId>& out) const;
  [[nodiscard]] std::uint64_t expression_signature(
      const ast::Node& expression);
  [[nodiscard]] std::uint64_t root_signature(NodeId root);
  [[nodiscard]] bool permutation_valid(NodeId root,
                                       std::span<const std::uint32_t> perm,
                                       std::size_t& cursor) const;

  template <typename Emit>
  void match_impl(std::span<const PredicateId> fulfilled, ForestContext& ctx,
                  Emit&& emit) const;

  Options options_;
  SharedForest forest_;

  std::vector<SubRecord> subs_;  // dense by subscription id
  std::vector<SubscriptionId> free_ids_;
  std::size_t live_count_ = 0;

  // Root attachment: root node -> head of its subscription chain, plus the
  // signature index driving the subsumption fast path and the
  // always-candidate roots (static truth = true).
  std::unordered_map<NodeId, std::uint32_t> root_head_;
  std::unordered_map<NodeId, std::uint64_t> root_sig_;
  std::unordered_map<std::uint64_t, std::vector<NodeId>> roots_by_sig_;
  std::vector<std::uint8_t> is_root_;  // dense by node id
  std::vector<NodeId> always_roots_;
  std::uint64_t subsumption_hits_ = 0;

  // Partial sharing: borrower root -> donor node (dense by node id,
  // kNoNode = not a borrower). A borrower holds one forest reference on its
  // donor, so the donor's node — and therefore its memoized truth — can
  // never die before the last borrower detaches. roots_by_pred_ is the
  // donor candidate index: predicate id -> result roots whose expression
  // uses it.
  std::vector<NodeId> donor_of_;
  std::unordered_map<std::uint32_t, std::vector<NodeId>> roots_by_pred_;
  std::size_t live_borrowers_ = 0;

  // Add-path scratch only — never touched by the (concurrent) match path.
  std::vector<PredicateId> pred_scratch_;
  std::vector<std::uint32_t> perm_scratch_;
};

}  // namespace ncps
