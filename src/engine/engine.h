// The filtering engine interface shared by the paper's three algorithms.
//
// All engines implement the same two-phase pipeline (paper §3.2):
//   phase 1 (predicate matching): event → {id(p)} via the one-dimensional
//     PredicateIndex — identical machinery for every engine ("the first
//     phases use the same indexes in the same way in both approaches");
//   phase 2 (subscription matching): {id(p)} → {id(s)} — where the
//     algorithms differ and where the paper measures.
//
// match(event) runs both phases; match_predicates(fulfilled) enters at
// phase 2 with an externally supplied fulfilled-predicate set, which is how
// the figure benchmarks reproduce the paper's methodology (fulfilled counts
// of 5 000/10 000 are workload parameters there, not event outcomes).
//
// match_batch(events, sink) is the batch-oriented entry point the sharded
// broker drives: phase 1 runs once over the whole batch (index lookups and
// scratch buffers amortise across events) and phase-2 results stream into a
// MatchSink instead of accumulating in one vector.
//
// Engines own their predicate references: add() takes one PredicateTable
// reference per unique predicate stored, remove() releases them, and index
// registration follows the 0→1/1→0 refcount transitions.
//
// Threading: mutation (add/remove/bulk load/snapshots) is single-threaded —
// the broker layer serialises it per shard. Matching is read-mostly: the
// const entry points (match_predicates with a MatchContext, match_range)
// touch no mutable engine state — every scratch array and every counter
// lives in the caller-supplied MatchContext — so any number of threads may
// match against one engine concurrently, provided mutation is excluded for
// the duration. The sharded broker enforces that exclusion with an epoch
// read-gate (common/epoch_domain.h): each match task runs inside an
// EngineView — an epoch-pinned read-side section — and an applier closes
// the gate (waiting out pinned readers) only for the actual mutation, so
// lock-free readers and mid-batch mutation interleave at chunk granularity.
// An engine's state therefore splits into two classes:
//   - reader-visible: everything the const match path traverses — the
//     phase-1 index, predicate table entries, the forest/tree/counting
//     structures, per-subscription records. Mutated only inside the write
//     gate; memory leaving these structures is retired to the engine's
//     EpochDomain (retire_or_delete), never freed in place.
//   - apply-side: bookkeeping only mutators touch (use counts, free lists,
//     bulk-load queues, cumulative stats, the default context). Guarded by
//     the broker's per-shard mutex alone; readers never look at it.
// Engines that cache the domain (set_epoch_domain) route deferred frees
// onto it; engines without one keep the legacy free-immediately behaviour.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string_view>
#include <vector>

#include "common/epoch_domain.h"
#include "common/ids.h"
#include "common/memory_tracker.h"
#include "event/event.h"
#include "index/predicate_index.h"
#include "predicate/predicate_table.h"
#include "subscription/ast.h"

namespace ncps {

namespace storage {
class Writer;
class Reader;
}  // namespace storage

/// Phase-2 work counters. Two instances live in every engine: `last_stats()`
/// covers exactly the most recent match_predicates call (reset by the base
/// class before each dispatch), while `cumulative_stats()` accumulates
/// forever — that one feeds the telemetry plane's per-shard match counters.
struct MatchStats {
  std::uint64_t events = 0;               ///< phase-2 invocations folded in
  std::uint64_t fulfilled_predicates = 0; ///< phase-1 candidates handed to phase 2
  std::uint64_t candidates = 0;           ///< candidate subscriptions considered
  std::uint64_t tree_evaluations = 0;     ///< Boolean trees evaluated (non-canonical)
  std::uint64_t node_evaluations = 0;     ///< DAG nodes evaluated (shared forest)
  std::uint64_t truth_lookups = 0;        ///< per-leaf truth probes during tree evaluation
  std::uint64_t hit_increments = 0;       ///< counter bumps (counting family)
  std::uint64_t counter_comparisons = 0;  ///< hits-vs-required comparisons
  std::uint64_t covering_skips = 0;       ///< borrower roots skipped via donor truth
  std::uint64_t matches = 0;              ///< subscriptions reported

  void reset() { *this = MatchStats{}; }

  void accumulate(const MatchStats& other) {
    events += other.events;
    fulfilled_predicates += other.fulfilled_predicates;
    candidates += other.candidates;
    tree_evaluations += other.tree_evaluations;
    node_evaluations += other.node_evaluations;
    truth_lookups += other.truth_lookups;
    hit_increments += other.hit_increments;
    counter_comparisons += other.counter_comparisons;
    covering_skips += other.covering_skips;
    matches += other.matches;
  }
};

/// Receives subscription matches as they are found, so results stream out of
/// the engine instead of accumulating in one vector. Events arrive in batch
/// order; matches within one event arrive in unspecified order, each once.
class MatchSink {
 public:
  virtual ~MatchSink() = default;
  virtual void on_match(std::size_t event_index, const Event& event,
                        SubscriptionId subscription) = 0;
};

/// Caller-owned match state: per-task MatchStats plus every scratch
/// structure one matching thread needs. Engines subclass it (make_context())
/// with their phase-2 scratch arrays — memoized truth, hit vectors,
/// frontier buffers — which is what makes the const match path safe to run
/// from several threads at once: all mutation lands in the context, all
/// engine state is read-only. One context serves one thread at a time; a
/// worker reuses its context across tasks and batches so the scratch
/// allocations amortise exactly as the old engine-owned scratch did.
///
/// stats accumulates across calls (the broker folds a worker's context into
/// per-shard totals after each task); callers wanting per-call numbers
/// reset it themselves — the legacy non-const FilterEngine entry points do,
/// preserving last_stats() semantics.
class MatchContext {
 public:
  virtual ~MatchContext() = default;

  MatchStats stats;
  /// Phase-1 batch scratch for match_range: all events' fulfilled sets
  /// concatenated + slice bounds.
  std::vector<PredicateId> fulfilled;
  std::vector<std::uint32_t> offsets;

  /// Release scratch growth slack (engine compact_storage forwards here).
  virtual void compact() {
    fulfilled.shrink_to_fit();
    offsets.shrink_to_fit();
  }

  /// Report scratch footprint under "scratch/..." labels (engine memory()
  /// forwards its default context here).
  virtual void add_memory(MemoryBreakdown& mem) const {
    mem.add("scratch/phase1_batch",
            vector_bytes(fulfilled) + vector_bytes(offsets));
  }
};

class FilterEngine {
 public:
  explicit FilterEngine(PredicateTable& table) : table_(&table) {}
  virtual ~FilterEngine() = default;

  FilterEngine(const FilterEngine&) = delete;
  FilterEngine& operator=(const FilterEngine&) = delete;

  /// Register a subscription; the engine copies what it needs from the
  /// expression (the caller keeps ownership of `expression`).
  virtual SubscriptionId add(const ast::Node& expression) = 0;

  /// Throw exactly what add() would throw for `expression`, registering
  /// nothing. `scratch` is a caller-owned table holding the expression's
  /// predicates (complements intern into it during canonicalisation). The
  /// base engine accepts everything; engines that canonicalise on add
  /// override. Touches no mutable engine state, so the broker may call it
  /// while the engine is concurrently matching — it pre-validates control
  /// commands that will be applied asynchronously, where a throw would
  /// otherwise surface on the data plane.
  virtual void validate(const ast::Node& expression,
                        PredicateTable& scratch) const {
    (void)expression;
    (void)scratch;
  }

  /// Unregister. Returns false if the id is unknown or already removed.
  virtual bool remove(SubscriptionId id) = 0;

  /// Build a match context sized for this engine (scratch grows lazily as
  /// the context is used). Contexts from engines of the same kind are
  /// interchangeable; the broker builds one per worker and reuses it across
  /// shards and batches.
  [[nodiscard]] virtual std::unique_ptr<MatchContext> make_context() const {
    return std::make_unique<MatchContext>();
  }

  /// Phase 2, streaming form, concurrent-safe: report subscriptions
  /// satisfied when exactly the given predicates are fulfilled, emitting
  /// each match (once, in unspecified order) to `sink` with the event
  /// context. Const — every write lands in `ctx`, so any number of threads
  /// may call this on one engine as long as each brings its own context
  /// and no thread concurrently mutates the engine (the broker's
  /// shared-mutex reader path enforces exactly that). ctx.stats
  /// accumulates; the caller resets or folds it on its own schedule.
  void match_predicates(std::span<const PredicateId> fulfilled,
                        std::size_t event_index, const Event& event,
                        MatchSink& sink, MatchContext& ctx) const {
    ctx.stats.events += 1;
    ctx.stats.fulfilled_predicates += fulfilled.size();
    match_predicates_impl(fulfilled, event_index, event, sink, ctx);
  }

  /// Full pipeline over events[first, last), concurrent-safe: phase 1 once
  /// over the sub-range through this engine's index, then phase 2 per event
  /// streamed into `sink` with *batch-global* event indexes. This is the
  /// unit of work a (shard × event-chunk) match task executes.
  void match_range(std::span<const Event> events, std::size_t first,
                   std::size_t last, MatchSink& sink, MatchContext& ctx) const;

  /// Phase 2, legacy single-threaded form: dispatches through the engine's
  /// own default context, with per-call stats semantics — last_stats()
  /// covers exactly this call, cumulative_stats() grows by it.
  void match_predicates(std::span<const PredicateId> fulfilled,
                        std::size_t event_index, const Event& event,
                        MatchSink& sink) {
    MatchContext& ctx = default_context();
    ctx.stats.reset();
    match_predicates(fulfilled, event_index, event, sink, ctx);
    stats_ = ctx.stats;
    cumulative_stats_.accumulate(stats_);
  }

  /// Legacy phase-2 entry: appends matching ids to `out`. Non-virtual
  /// adapter over the MatchSink overload (with an empty event context) —
  /// engines implement the streaming form only.
  void match_predicates(std::span<const PredicateId> fulfilled,
                        std::vector<SubscriptionId>& out);

  /// Full pipeline: phase 1 through this engine's index, then phase 2.
  void match(const Event& event, std::vector<SubscriptionId>& out);

  /// Batched full pipeline: phase 1 once over the whole batch (one index
  /// traversal, shared fulfilled-set buffers), then phase 2 per event with
  /// results streamed into `sink`. Single-threaded (default-context) form.
  virtual void match_batch(std::span<const Event> events, MatchSink& sink);

  /// Enter bulk-load mode: until finish_bulk_load(), predicates newly
  /// acquired by add() are NOT registered with the phase-1 index one by one;
  /// they are queued and handed to PredicateIndex::bulk_load in one batch.
  /// Matching between begin and finish sees none of the pending predicates,
  /// so callers must not publish through this engine mid-bulk (the broker
  /// holds the shard lock across the whole window).
  void begin_bulk_load() {
    NCPS_EXPECTS(!bulk_loading_);
    bulk_loading_ = true;
  }

  /// Leave bulk-load mode, building the phase-1 index for every predicate
  /// still in use (pool may be null for a sequential build). After this the
  /// engine matches exactly as if every add() had run outside bulk mode.
  void finish_bulk_load(ThreadPool* pool);

  [[nodiscard]] virtual std::size_t subscription_count() const = 0;
  [[nodiscard]] virtual MemoryBreakdown memory() const = 0;
  [[nodiscard]] virtual std::string_view name() const = 0;

  /// Release allocator growth slack so memory() reflects the steady-state
  /// footprint (what a long-running broker converges to, and what the
  /// memory benchmarks measure). Matching behaviour is unchanged.
  virtual void compact_storage() {
    use_count_.shrink_to_fit();
    if (default_context_) default_context_->compact();
  }

  /// Work counters for the most recent match_predicates call only.
  ///
  /// Migration note (PR 8, updated PR 10): last_stats() used to be the only
  /// stats surface, and engines reset it at the top of their own match
  /// bodies — fine for the single-threaded figure benchmarks it was built
  /// for, but racy and meaningless under ShardedBroker, where N shards
  /// overwrite their engines' stats on every publish and a reader can never
  /// sample all N between two batches. It remains per-call (same semantics,
  /// now reset by the base-class wrapper instead of each engine) for the
  /// benchmarks, and is apply-side state: only the legacy non-const entry
  /// points grow it, never the epoch-pinned EngineView path the sharded
  /// broker matches through. Anything observability-shaped should use
  /// cumulative_stats(), which only grows and is sampled per shard (under
  /// the shard mutex, which still excludes mutation from sampling) by
  /// ShardedBroker::metrics() into ncps_match_* counters.
  [[nodiscard]] const MatchStats& last_stats() const { return stats_; }

  /// Totals over every match_predicates call since construction.
  [[nodiscard]] const MatchStats& cumulative_stats() const {
    return cumulative_stats_;
  }
  [[nodiscard]] PredicateTable& predicate_table() { return *table_; }
  [[nodiscard]] const PredicateIndex& predicate_index() const { return index_; }

  // ---- state snapshots (broker persistence, storage/snapshot.h) ----

  /// True if the engine can dump and restore its entire state (predicate
  /// table + internal structures) byte-exactly. Engines without it are
  /// snapshotted generically: the broker stores subscription texts and
  /// re-adds them through the bulk path on recovery.
  [[nodiscard]] virtual bool supports_state_snapshot() const { return false; }

  /// Fold transient slack (quarantines, free-list fragmentation) into a
  /// canonical shape before save_state() so derived structure needs no
  /// encoding. Must be called under the same exclusivity add() requires.
  virtual void prepare_snapshot() {}

  /// Dump the engine's predicate table and full phase-2 state. Only
  /// engines with supports_state_snapshot() implement these; the defaults
  /// are unreachable.
  virtual void save_state(storage::Writer& w) const {
    (void)w;
    NCPS_ASSERT(false && "engine does not support state snapshots");
  }

  /// Rebuild from save_state() bytes into a freshly constructed engine
  /// (same options, empty predicate table). Attribute ids are remapped
  /// through `attr_remap`; `pool` (nullable) parallelises the phase-1 index
  /// build. Throws StorageError on structural violations.
  virtual void load_state(storage::Reader& r,
                          std::span<const AttributeId> attr_remap,
                          ThreadPool* pool) {
    (void)r;
    (void)attr_remap;
    (void)pool;
    NCPS_ASSERT(false && "engine does not support state snapshots");
  }

  /// True if `id` is a live subscription in this engine. Used by snapshot
  /// recovery to validate an untrusted local-id map before it is trusted to
  /// index broker-side tables. Engines without state snapshots never face
  /// untrusted ids, so the default is false.
  [[nodiscard]] virtual bool owns_subscription(SubscriptionId id) const {
    (void)id;
    return false;
  }

  // ---- epoch domain (concurrent-reader reclamation; see header comment) --

  /// Attach (or detach, with nullptr) the epoch domain governing this
  /// engine's reader-visible state. The broker installs its shard's domain
  /// right after construction; appliers then wrap mutations in the domain's
  /// writer gate plus a ReclaimScope, so the engine's internal free sites
  /// (retire_or_delete) defer reclamation past every pinned reader.
  /// Engines with their own deferred-free machinery (the shared forest's
  /// node quarantine) reroute it in on_epoch_domain_changed. Call only
  /// under the same exclusivity add() requires.
  void set_epoch_domain(EpochDomain* domain) {
    epoch_domain_ = domain;
    on_epoch_domain_changed(domain);
  }

  /// The attached domain, or nullptr for standalone engines (every free is
  /// then immediate — the pre-epoch behaviour).
  [[nodiscard]] EpochDomain* epoch_domain() const { return epoch_domain_; }

 protected:
  /// Phase-2 body — what engines actually implement. Const: all scratch and
  /// all counters live in `ctx` (engines downcast to the type their
  /// make_context() built); implementations add to ctx.stats and must NOT
  /// reset it. Any engine state touched here must be read-only or the
  /// concurrent-reader contract of the public const overload breaks.
  virtual void match_predicates_impl(std::span<const PredicateId> fulfilled,
                                     std::size_t event_index,
                                     const Event& event, MatchSink& sink,
                                     MatchContext& ctx) const = 0;

  /// Hook for engines whose internals hold their own deferred-free lists:
  /// called from set_epoch_domain so they can reroute those lists onto the
  /// domain (NonCanonicalEngine points its forest's quarantine at it).
  virtual void on_epoch_domain_changed(EpochDomain* domain) { (void)domain; }

  /// The engine-owned context backing the legacy single-threaded entry
  /// points (match, match_batch, non-const match_predicates). Lazily built
  /// via make_context() — it cannot exist before the derived class does.
  [[nodiscard]] MatchContext& default_context() {
    if (!default_context_) default_context_ = make_context();
    return *default_context_;
  }

  /// The default context if one was ever built (memory accounting only).
  [[nodiscard]] const MatchContext* default_context_if_any() const {
    return default_context_.get();
  }

  /// Take an engine-owned reference to a live predicate; the first
  /// engine-local use registers it with the phase-1 index. Index membership
  /// is driven by the engine's own use count, NOT the table's global
  /// refcount: other owners (parsed expressions, other engines sharing the
  /// table) may acquire and release the same predicate on their own
  /// schedule without corrupting this engine's index.
  void acquire_predicate(PredicateId id) {
    table_->add_ref(id);
    if (id.value() >= use_count_.size()) use_count_.resize(id.value() + 1, 0);
    if (use_count_[id.value()]++ == 0) {
      if (bulk_loading_) {
        // Defer index registration to finish_bulk_load. The pending flag
        // dedupes 0→1→0→1 flutter within one bulk window.
        if (id.value() >= pending_index_add_.size()) {
          pending_index_add_.resize(id.value() + 1, 0);
        }
        if (!pending_index_add_[id.value()]) {
          pending_index_add_[id.value()] = 1;
          pending_ids_.push_back(id);
        }
      } else {
        index_.add(id, table_->get(id));
      }
    }
  }

  /// Release an engine-owned reference; the last engine-local use
  /// deregisters from the index (while the predicate is still resolvable).
  void release_predicate(PredicateId id) {
    NCPS_ASSERT(id.value() < use_count_.size() && use_count_[id.value()] > 0);
    if (--use_count_[id.value()] == 0) {
      // A predicate whose registration is still pending was never added to
      // the index; finish_bulk_load filters it out via the use count.
      if (!(bulk_loading_ && id.value() < pending_index_add_.size() &&
            pending_index_add_[id.value()])) {
        index_.remove(id, table_->get(id));
      }
    }
    table_->release(id);
  }

  [[nodiscard]] std::size_t use_count_bytes() const {
    return use_count_.capacity() * sizeof(std::uint32_t);
  }

  PredicateTable* table_;
  PredicateIndex index_;
  MatchStats stats_;
  std::vector<std::uint32_t> use_count_;  // engine-local uses per predicate id

 private:
  MatchStats cumulative_stats_;
  EpochDomain* epoch_domain_ = nullptr;

  // Bulk-load state: predicates whose first engine-local use happened while
  // bulk_loading_ (index registration deferred to finish_bulk_load).
  bool bulk_loading_ = false;
  std::vector<PredicateId> pending_ids_;
  std::vector<std::uint8_t> pending_index_add_;  // dense by predicate id

  std::unique_ptr<MatchContext> default_context_;
};

/// An epoch-pinned read-side view of one engine — the formal shape of a
/// match task. Construction pins a reader slot on the engine's domain
/// (blocking only while an applier is inside its write gate); destruction
/// unpins, exceptions included. While the view lives, every reader-visible
/// structure the const match path traverses is guaranteed stable: appliers
/// wait out the pin before mutating, and memory unlinked before the pin was
/// taken is retired — not freed — until the pin drops. Only the const,
/// context-taking entry points are exposed; the legacy mutable-stats
/// overloads stay off the concurrent path by construction.
///
/// With no domain (standalone engines, the seed broker) the view is a
/// zero-cost pass-through — same call shape, no pin.
class EngineView {
 public:
  /// `slot` identifies the reader (one live view per slot at a time); the
  /// broker uses the pool worker id.
  EngineView(const FilterEngine& engine, EpochDomain* domain,
             std::size_t slot)
      : engine_(&engine), domain_(domain), slot_(slot) {
    if (domain_ != nullptr) domain_->reader_enter(slot_);
  }
  ~EngineView() {
    if (domain_ != nullptr) domain_->reader_exit(slot_);
  }
  EngineView(const EngineView&) = delete;
  EngineView& operator=(const EngineView&) = delete;

  void match_range(std::span<const Event> events, std::size_t first,
                   std::size_t last, MatchSink& sink,
                   MatchContext& ctx) const {
    engine_->match_range(events, first, last, sink, ctx);
  }

  void match_predicates(std::span<const PredicateId> fulfilled,
                        std::size_t event_index, const Event& event,
                        MatchSink& sink, MatchContext& ctx) const {
    engine_->match_predicates(fulfilled, event_index, event, sink, ctx);
  }

  [[nodiscard]] const FilterEngine& engine() const { return *engine_; }

 private:
  const FilterEngine* engine_;
  EpochDomain* domain_;
  std::size_t slot_;
};

}  // namespace ncps
