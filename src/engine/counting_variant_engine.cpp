#include "engine/counting_variant_engine.h"

namespace ncps {

void CountingVariantEngine::match_predicates_impl(
    std::span<const PredicateId> fulfilled, std::size_t event_index,
    const Event& event, MatchSink& sink) {
  match_impl(fulfilled, [&](SubscriptionId sid) {
    sink.on_match(event_index, event, sid);
  });
}

template <typename Emit>
void CountingVariantEngine::match_impl(std::span<const PredicateId> fulfilled,
                                       Emit&& emit) {
  matched_subs_.clear();
  touched_.clear();
  if (touched_set_.capacity() < required_.size()) {
    touched_set_.resize(required_.size());
  }
  touched_set_.clear();

  // Step 1: increment hit counters, recording each touched transformed
  // subscription once — the candidate list.
  for (const PredicateId pid : fulfilled) {
    if (pid.value() >= assoc_.list_count()) continue;
    assoc_.for_each(pid.value(), [&](Tid tid) {
      ++hits_[tid];
      ++stats_.hit_increments;
      if (touched_set_.insert(tid)) touched_.push_back(tid);
    });
  }

  // Step 2: compare candidates only; reset exactly what was touched.
  for (const Tid tid : touched_) {
    ++stats_.counter_comparisons;
    if (hits_[tid] == required_[tid]) {
      if (matched_subs_.insert(owner_[tid])) {
        emit(SubscriptionId(owner_[tid]));
        ++stats_.matches;
      }
    }
    hits_[tid] = 0;
  }
  stats_.candidates = touched_.size();
}

}  // namespace ncps
