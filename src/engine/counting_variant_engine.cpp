#include "engine/counting_variant_engine.h"

namespace ncps {

void CountingVariantEngine::match_predicates_impl(
    std::span<const PredicateId> fulfilled, std::size_t event_index,
    const Event& event, MatchSink& sink, MatchContext& ctx) const {
  match_impl(fulfilled, static_cast<CountingContext&>(ctx),
             [&](SubscriptionId sid) {
               sink.on_match(event_index, event, sid);
             });
}

template <typename Emit>
void CountingVariantEngine::match_impl(std::span<const PredicateId> fulfilled,
                                       CountingContext& ctx,
                                       Emit&& emit) const {
  const std::size_t tid_count = required_.size();
  if (ctx.hits.size() < tid_count) ctx.hits.resize(tid_count, 0);
  if (ctx.matched_subs.capacity() < subs_.size()) {
    ctx.matched_subs.resize(subs_.size());
  }
  ctx.matched_subs.clear();
  ctx.touched.clear();
  if (ctx.touched_set.capacity() < tid_count) {
    ctx.touched_set.resize(tid_count);
  }
  ctx.touched_set.clear();

  // Step 1: increment hit counters, recording each touched transformed
  // subscription once — the candidate list.
  for (const PredicateId pid : fulfilled) {
    if (pid.value() >= assoc_.list_count()) continue;
    assoc_.for_each(pid.value(), [&](Tid tid) {
      ++ctx.hits[tid];
      ++ctx.stats.hit_increments;
      if (ctx.touched_set.insert(tid)) ctx.touched.push_back(tid);
    });
  }

  // Step 2: compare candidates only; reset exactly what was touched.
  for (const Tid tid : ctx.touched) {
    ++ctx.stats.counter_comparisons;
    if (ctx.hits[tid] == required_[tid]) {
      if (ctx.matched_subs.insert(owner_[tid])) {
        emit(SubscriptionId(owner_[tid]));
        ++ctx.stats.matches;
      }
    }
    ctx.hits[tid] = 0;
  }
  ctx.stats.candidates += ctx.touched.size();
}

}  // namespace ncps
