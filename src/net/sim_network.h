// Deterministic simulated network (the overlay's transport substrate).
//
// The paper motivates filtering on "peer-to-peer networks of less equipped
// machines"; reproducing that deployment needs brokers exchanging messages
// over links. Real sockets would make every test timing-dependent, so the
// overlay runs on this discrete-event network instead: messages are
// scheduled on links with fixed latencies and delivered in global
// (time, sequence) order — bit-for-bit reproducible runs, same code paths
// as a real transport at the broker layer (see DESIGN.md §4, substitutions).
//
// Header-only template: the payload type is supplied by the broker layer,
// keeping this substrate protocol-agnostic.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/contracts.h"
#include "common/ids.h"

namespace ncps {

/// Simulated microseconds.
using SimTime = std::uint64_t;

template <typename Payload>
class SimNetwork {
 public:
  struct Delivery {
    BrokerId from;
    BrokerId to;
    Payload payload;
    SimTime at = 0;
    std::uint64_t seq = 0;  // tie-breaker: FIFO among equal timestamps
  };

  /// Add a node; returns its dense id.
  BrokerId add_node() {
    const BrokerId id(static_cast<std::uint32_t>(adjacency_.size()));
    adjacency_.emplace_back();
    return id;
  }

  [[nodiscard]] std::size_t node_count() const { return adjacency_.size(); }

  /// Create a bidirectional link. Rejects self-links and duplicates.
  void connect(BrokerId a, BrokerId b, SimTime latency) {
    NCPS_EXPECTS(a != b);
    NCPS_EXPECTS(valid_node(a) && valid_node(b));
    NCPS_EXPECTS(!linked(a, b));
    adjacency_[a.value()].push_back(Link{b, latency});
    adjacency_[b.value()].push_back(Link{a, latency});
  }

  [[nodiscard]] bool linked(BrokerId a, BrokerId b) const {
    if (!valid_node(a)) return false;
    for (const Link& l : adjacency_[a.value()]) {
      if (l.peer == b) return true;
    }
    return false;
  }

  [[nodiscard]] std::vector<BrokerId> neighbors(BrokerId node) const {
    NCPS_EXPECTS(valid_node(node));
    std::vector<BrokerId> out;
    out.reserve(adjacency_[node.value()].size());
    for (const Link& l : adjacency_[node.value()]) out.push_back(l.peer);
    return out;
  }

  /// Queue a message over an existing link; it will be delivered at
  /// now + link latency.
  void send(BrokerId from, BrokerId to, Payload payload) {
    const SimTime latency = link_latency(from, to);
    queue_.push(Delivery{from, to, std::move(payload), now_ + latency,
                         next_seq_++});
    ++messages_sent_;
  }

  [[nodiscard]] bool idle() const { return queue_.empty(); }
  [[nodiscard]] SimTime now() const { return now_; }
  [[nodiscard]] std::uint64_t messages_sent() const { return messages_sent_; }

  /// Deliver the earliest pending message through `handler`; returns false
  /// when the queue is empty. The handler may send() more messages.
  template <typename Handler>
  bool step(Handler&& handler) {
    if (queue_.empty()) return false;
    Delivery d = queue_.top();
    queue_.pop();
    NCPS_ASSERT(d.at >= now_);
    now_ = d.at;
    handler(d);
    return true;
  }

  /// Run until quiescent. Returns the number of deliveries processed.
  template <typename Handler>
  std::size_t run(Handler&& handler) {
    std::size_t delivered = 0;
    while (step(handler)) ++delivered;
    return delivered;
  }

 private:
  struct Link {
    BrokerId peer;
    SimTime latency;
  };

  struct Later {
    bool operator()(const Delivery& a, const Delivery& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  [[nodiscard]] bool valid_node(BrokerId id) const {
    return id.valid() && id.value() < adjacency_.size();
  }

  [[nodiscard]] SimTime link_latency(BrokerId a, BrokerId b) const {
    NCPS_EXPECTS(valid_node(a));
    for (const Link& l : adjacency_[a.value()]) {
      if (l.peer == b) return l.latency;
    }
    NCPS_EXPECTS(false && "send over a non-existent link");
    return 0;
  }

  std::vector<std::vector<Link>> adjacency_;
  std::priority_queue<Delivery, std::vector<Delivery>, Later> queue_;
  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t messages_sent_ = 0;
};

}  // namespace ncps
