// Multi-core broker: N independent engine shards behind one session surface.
//
// Each shard owns a full matching stack — its own PredicateTable, its own
// FilterEngine (any of the paper's three algorithms) and therefore its own
// phase-1 index — preserving the engine invariant of exclusive table
// ownership. Subscriptions are placed on exactly one shard by the
// ShardRouter; published events visit every shard, so each shard performs
// phase 1 + phase 2 over ~1/N of the subscription population.
//
// The data plane is batch-oriented: publish_batch() fans the whole batch to
// the shards through a fixed ThreadPool (one task per shard — each engine is
// only ever touched by one thread at a time), shards stream matches into
// per-shard buffers via the engines' MatchSink interface, and the publishing
// thread merges the buffers deterministically (per event, ascending
// subscription id) before invoking subscriber callbacks. Callbacks always
// run on the publishing thread, never concurrently.
//
// The control plane (register/subscribe/unsubscribe) is single-threaded, as
// in the seed broker; it must not be called concurrently with publishing.
//
// shard_count=1 is the seed broker, bit for bit: no threads are spawned, the
// publish path degenerates to match-then-deliver, and subscription ids are
// allocated in the same LIFO-reuse order the single engine would produce —
// Broker (broker.h) is a thin specialisation of this class.
#pragma once

#include <functional>
#include <memory>
#include <span>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "broker/shard_router.h"
#include "common/ids.h"
#include "common/thread_pool.h"
#include "engine/engine_factory.h"
#include "event/event.h"
#include "event/schema.h"
#include "subscription/parser.h"

namespace ncps {

struct Notification {
  SubscriberId subscriber;
  SubscriptionId subscription;
  const Event* event = nullptr;  ///< valid for the duration of the callback
};

struct ShardedBrokerConfig {
  /// Independent engine shards. 1 reproduces the seed single-engine broker.
  std::size_t shard_count = 1;
  EngineKind engine = EngineKind::NonCanonical;
  /// Worker threads fanning published batches across shards; 0 picks
  /// min(shard_count, hardware_concurrency). Ignored when shard_count is 1
  /// (single-shard brokers never spawn threads).
  std::size_t worker_threads = 0;
};

class ShardedBroker {
 public:
  using NotifyFn = std::function<void(const Notification&)>;

  ShardedBroker(AttributeRegistry& attrs, ShardedBrokerConfig config);
  explicit ShardedBroker(AttributeRegistry& attrs)
      : ShardedBroker(attrs, ShardedBrokerConfig{}) {}
  virtual ~ShardedBroker();

  // Engines hold references into shard-owned tables, so a broker pins its
  // address: neither copyable nor movable. Use create() for a movable handle.
  ShardedBroker(const ShardedBroker&) = delete;
  ShardedBroker& operator=(const ShardedBroker&) = delete;
  ShardedBroker(ShardedBroker&&) = delete;
  ShardedBroker& operator=(ShardedBroker&&) = delete;

  [[nodiscard]] static std::unique_ptr<ShardedBroker> create(
      AttributeRegistry& attrs, ShardedBrokerConfig config = {});

  /// Open a subscriber session.
  SubscriberId register_subscriber(NotifyFn callback);

  /// Close a session, dropping all its subscriptions.
  void unregister_subscriber(SubscriberId subscriber);

  /// Register a subscription for a subscriber; the router places it on one
  /// shard. Throws ParseError on malformed text.
  SubscriptionId subscribe(SubscriberId subscriber, std::string_view text);

  /// Remove one subscription. Returns false if unknown.
  bool unsubscribe(SubscriptionId subscription);

  /// Match an event against every shard and synchronously notify all
  /// matching subscribers. Returns the number of notifications delivered.
  std::size_t publish(const Event& event);

  /// Batched publish: one parallel fan-out across shards for the whole
  /// batch. Notifications are delivered per event in batch order, within an
  /// event in ascending subscription-id order (deterministic regardless of
  /// shard count or thread scheduling). Returns notifications delivered.
  std::size_t publish_batch(std::span<const Event> events);

  [[nodiscard]] std::size_t subscription_count() const;
  [[nodiscard]] std::size_t subscriber_count() const {
    return subscribers_.size();
  }
  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }
  [[nodiscard]] FilterEngine& shard_engine(std::size_t shard) {
    NCPS_EXPECTS(shard < shards_.size());
    return *shards_[shard]->engine;
  }
  /// Subscriptions currently placed on one shard (load-balance visibility).
  [[nodiscard]] std::size_t shard_subscription_count(std::size_t shard) const {
    NCPS_EXPECTS(shard < shards_.size());
    return shards_[shard]->engine->subscription_count();
  }
  [[nodiscard]] AttributeRegistry& attributes() { return *attrs_; }
  [[nodiscard]] MemoryBreakdown memory() const;

 private:
  struct ShardMatch {
    std::uint32_t event_index;
    SubscriptionId subscription;  // global id
  };

  /// One engine shard: exclusive table + engine + per-batch match buffer.
  struct Shard {
    PredicateTable table;
    std::unique_ptr<FilterEngine> engine;
    /// Engine-local id → broker-global id (dense by local id value).
    std::vector<SubscriptionId> to_global;
    /// Matches from the current batch; only touched by this shard's task.
    std::vector<ShardMatch> matches;
  };

  /// Where a live global subscription id points.
  struct Route {
    std::uint32_t shard = 0;
    SubscriptionId local;            // invalid() ⇒ slot free
    SubscriberId owner;
  };

  class ShardSink;

  SubscriptionId allocate_global();
  void remove_subscription(SubscriptionId global);
  void run_shard_tasks(std::span<const Event> events);
  std::size_t merge_and_deliver(std::span<const Event> events);

  AttributeRegistry* attrs_;
  ShardRouter router_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::unique_ptr<ThreadPool> pool_;  // null when shard_count == 1

  std::unordered_map<SubscriberId, NotifyFn> subscribers_;
  std::unordered_map<SubscriberId, std::vector<SubscriptionId>>
      subscriptions_by_subscriber_;
  std::vector<Route> routes_;  // dense by global subscription id
  std::vector<SubscriptionId> free_globals_;
  std::uint32_t next_subscriber_ = 0;
  std::uint64_t subscribe_sequence_ = 0;  // router key component
  std::vector<SubscriptionId> merge_scratch_;
  std::vector<std::size_t> merge_cursor_;
};

}  // namespace ncps
