// Multi-core broker: N independent engine shards behind one session surface.
//
// Each shard owns a full matching stack — its own PredicateTable, its own
// FilterEngine (any of the paper's three algorithms) and therefore its own
// phase-1 index — preserving the engine invariant of exclusive table
// ownership. Subscriptions are placed on exactly one shard by the
// ShardRouter; published events visit every shard, so each shard performs
// phase 1 + phase 2 over ~1/N of the subscription population.
//
// The data plane is batch-oriented and scheduled at sub-shard granularity:
// publish_batch() splits the batch into (shard × event-chunk) match tasks on
// a work-stealing pool (common/work_stealing_pool.h). Tasks are dealt
// shard-major — a worker's initial slice covers consecutive chunks of the
// same shard, so its engine's structures stay hot — and an idle worker
// steals the oldest chunk of the most loaded deque, which is what keeps a
// skew-loaded shard from becoming the batch's critical path (one task per
// shard, the previous design, made it exactly that). Matching inside a
// shard is read-mostly concurrent: any number of workers may match one
// engine at once because every write lands in a per-worker MatchContext
// (engine/engine.h). Match tasks take no lock at all — each runs as an
// epoch-pinned EngineView read-side section on the shard's EpochDomain
// (common/epoch_domain.h), and control-plane mutation closes that domain's
// write gate (waiting out the pinned chunks, never a whole batch) for
// exactly the duration of the mutation. The shard mutex survives only to
// serialise *mutators* against each other — drains, inline applies, bulk
// loads, checkpoint, metrics sampling — never to admit readers. Each task
// streams matches
// into its own (shard, chunk) buffer via the engines' MatchSink interface,
// and the buffers are merged deterministically (per event, ascending global
// subscription id — byte-identical regardless of shard count, chunking or
// steal interleaving) by parallel per-event-range merge tasks on the same
// pool. In the default inline delivery mode callbacks run on the publishing
// thread, never concurrently; with DeliveryOptions::mode == Async the
// merged matches are deposited into per-subscriber bounded outboxes and
// callbacks run on the delivery executor's threads
// (delivery/delivery_plane.h), so a slow consumer blocks neither matching
// nor other subscribers. In both modes callbacks must not publish back into
// the broker.
//
// The control plane (register/subscribe/unsubscribe) may be called from any
// number of threads concurrently with publishing. Every control operation is
// turned into a command for the owning shard:
//
//   - if no other mutator holds the shard's mutex, the command — after any
//     commands already queued for the shard — is applied inline: the
//     applier enters the shard's epoch write gate, waits out the chunks
//     currently pinned (bounded by the chunk cap, NOT by the batch), and
//     mutates. Single-threaded callers observe the exact seed-broker
//     semantics: a subscription is matchable the instant subscribe()
//     returns;
//   - if another mutator holds the mutex, the command is pushed onto the
//     shard's lock-free MPSC queue and applied by whichever mutator next
//     drains the shard — the dedicated apply thread (woken by the push),
//     the publishing thread at the start of the next batch, or quiesce().
//     The publisher never takes the control-plane lock.
//
// Commands therefore apply *concurrently with matching*: a long batch no
// longer gates the control plane (the old design parked commands until the
// batch's fan-out finished — see git history for matching_active_). Batch
// determinism is unaffected where it is promised: the merged notification
// order for a fixed engine state is byte-identical regardless of shard
// count, chunking or stealing, and without concurrent control threads the
// publish lock means every command still lands between batches. With
// concurrent churn, *which* chunk boundary a command lands on is timing-
// dependent — exactly as which *batch* boundary it landed on was before —
// and the post-quiesce state is identical either way (churn_fuzz proves
// both).
//
// Commands carry a broker-wide issue generation; each shard's
// GenerationFence records how far it has applied. That gives unsubscribe an
// epoch-style guarantee without stalling in-flight batches: once every
// shard's applied generation passes the unsubscribe's issue point (observe
// via wait_applied(), or force it with quiesce()), no further notification
// for that subscription will be delivered. quiesce() additionally waits for
// the in-flight batch's deliveries, so it is the full barrier.
//
// Subscription text is parsed in two stages mirroring the parser's own
// phases: the calling thread runs parse_raw (so ParseError is synchronous
// and nothing is registered on failure), and the thread applying the command
// interns the raw tree into the shard's table (predicates live, and are
// refcounted, exactly where the subscription's engine lives). For the
// counting engines a deferred subscribe is additionally pre-canonicalised on
// the calling thread, so DNF-explosion errors are also synchronous and a
// queued command can no longer fail.
//
// shard_count=1 is the seed broker: no threads are spawned and the publish
// path degenerates to match-then-deliver — Broker (broker.h) is a thin
// specialisation of this class.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <span>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "broker/shard_router.h"
#include "common/epoch_domain.h"
#include "common/generation_fence.h"
#include "common/ids.h"
#include "common/mpsc_queue.h"
#include "common/thread_pool.h"
#include "common/work_stealing_pool.h"
#include "engine/engine.h"
#include "delivery/delivery_plane.h"
#include "engine/engine_factory.h"
#include "event/event.h"
#include "event/schema.h"
#include "obs/broker_metrics.h"
#include "storage/journal.h"
#include "storage/snapshot.h"
#include "subscription/parser.h"

namespace ncps {

namespace storage {
class Writer;
class Reader;
}  // namespace storage

/// How publish_batch schedules match work across the worker pool.
enum class MatchScheduler : std::uint8_t {
  /// (shard × event-chunk) tasks on the work-stealing pool: chunk size
  /// adapts to batch size and shard count, idle workers steal chunks from
  /// loaded shards. The default.
  kWorkStealing,
  /// One task per shard (the pre-work-stealing design), kept as the
  /// benchmark baseline for quantifying what stealing buys under skew.
  kPerShard,
};

struct ShardedBrokerConfig {
  /// Independent engine shards. 1 reproduces the seed single-engine broker.
  std::size_t shard_count = 1;
  EngineKind engine = EngineKind::NonCanonical;
  /// Forest normalisation for EngineKind::NonCanonical shards
  /// (shared_forest.h); ignored by the other engine kinds.
  Normalisation normalisation = Normalisation::None;
  /// Worker threads matching published batches. 0 picks
  /// min(shard_count, hardware_concurrency). A pool is spawned when the
  /// resolved count exceeds 1 *or* shard_count exceeds 1; a single-shard
  /// single-worker broker never spawns threads (the seed publish path).
  /// More workers than shards is meaningful: workers share one shard's
  /// engine as concurrent readers, each with its own match context.
  std::size_t worker_threads = 0;
  /// Subscription placement (broker/shard_router.h). kSubscriberAffine
  /// colocates a subscriber's portfolio on one shard — deliberate skew,
  /// which the work-stealing scheduler is built to absorb.
  ShardPlacement placement = ShardPlacement::kSpread;
  /// Match task scheduling policy (see MatchScheduler).
  MatchScheduler scheduler = MatchScheduler::kWorkStealing;
  /// Events per (shard × chunk) match task under kWorkStealing. 0 sizes
  /// chunks adaptively: enough tasks per shard that stealing can level a
  /// skewed load (~8 tasks per worker across the batch), but no more.
  std::size_t match_chunk_events = 0;
  /// Delivery plane configuration. The default (DeliveryMode::Inline) runs
  /// callbacks on the publishing thread — the seed semantics; Async routes
  /// them through per-subscriber outboxes and the delivery executor
  /// (delivery/delivery_plane.h).
  DeliveryOptions delivery{};
  /// Crash-recoverable subscription store (storage/snapshot.h). When
  /// enabled the broker journals every control operation before applying
  /// it, checkpoint() writes per-shard snapshots, and construction recovers
  /// the full subscription state from the storage directory. Default off:
  /// byte-for-byte the in-memory-only behaviour.
  storage::StorageOptions storage{};
  /// Runtime telemetry gate. When false no metric cells are allocated and
  /// every instrumentation site reduces to one null check — the same
  /// observable behaviour as compiling with NCPS_METRICS=OFF, which removes
  /// even that check. metrics() still works, reporting only values sampled
  /// from existing structures (per-shard match stats, gauges).
  bool metrics = true;
};

class ShardedBroker {
 public:
  using NotifyFn = std::function<void(const Notification&)>;

  ShardedBroker(AttributeRegistry& attrs, ShardedBrokerConfig config);
  explicit ShardedBroker(AttributeRegistry& attrs)
      : ShardedBroker(attrs, ShardedBrokerConfig{}) {}
  virtual ~ShardedBroker();

  // Engines hold references into shard-owned tables, so a broker pins its
  // address: neither copyable nor movable. Use create() for a movable handle.
  ShardedBroker(const ShardedBroker&) = delete;
  ShardedBroker& operator=(const ShardedBroker&) = delete;
  ShardedBroker(ShardedBroker&&) = delete;
  ShardedBroker& operator=(ShardedBroker&&) = delete;

  [[nodiscard]] static std::unique_ptr<ShardedBroker> create(
      AttributeRegistry& attrs, ShardedBrokerConfig config = {});

  /// Open a subscriber session. Thread-safe. In async delivery mode the
  /// subscriber's outbox uses the configured default backpressure policy.
  SubscriberId register_subscriber(NotifyFn callback);

  /// Open a subscriber session with an explicit backpressure policy for its
  /// outbox. Only meaningful in async delivery mode (the policy is ignored
  /// under inline delivery). Thread-safe.
  SubscriberId register_subscriber(NotifyFn callback,
                                   BackpressurePolicy policy);

  /// Close a session, dropping all its subscriptions. Thread-safe; an
  /// in-flight batch may still invoke the callback (quiesce() to fence). In
  /// async mode the subscriber's queued-but-undelivered notifications are
  /// discarded.
  void unregister_subscriber(SubscriberId subscriber);

  /// Register a subscription for a subscriber; the router places it on one
  /// shard. Throws ParseError on malformed text (and, for counting engines,
  /// DnfExplosionError/SubscriptionTooLargeError) with no state change.
  /// Thread-safe; the subscription is matched by every batch that starts
  /// after this returns.
  SubscriptionId subscribe(SubscriberId subscriber, std::string_view text);

  /// Register many subscriptions for one subscriber in a single control
  /// operation. Semantics match subscribe() called once per element (same
  /// shard placement, same error behaviour — all texts are parsed and
  /// validated before any state changes, so a throw registers nothing), but
  /// each shard builds its phase-1 index in bulk: predicate registration is
  /// deferred across the shard's whole batch and handed to
  /// PredicateIndex::bulk_load, partitioned by attribute and (for large
  /// batches applied inline) built on a temporary thread pool. Shards busy
  /// with a batch receive one queued BulkSubscribe command instead of N
  /// Subscribe commands. Thread-safe. Returns the new ids in input order.
  std::vector<SubscriptionId> subscribe_bulk(
      SubscriberId subscriber, std::span<const std::string> texts);

  /// Remove one subscription. Returns false if unknown or already removed.
  /// Thread-safe. On return the removal is issued: batches starting after
  /// every shard passes control_generation() (see wait_applied/quiesce)
  /// deliver no further notifications for it; with no batch in flight the
  /// removal has already been applied when this returns.
  bool unsubscribe(SubscriptionId subscription);

  /// Match an event against every shard and notify all matching
  /// subscribers. Inline mode: callbacks run before this returns, and the
  /// return value is notifications delivered. Async mode: notifications are
  /// accepted into per-subscriber outboxes (applying backpressure policies)
  /// and delivered by the executor; the return value is notifications
  /// accepted.
  std::size_t publish(const Event& event);

  /// Batched publish: one parallel fan-out across shards for the whole
  /// batch. Notifications are ordered per event in batch order, within an
  /// event in ascending subscription-id order (deterministic regardless of
  /// shard count or thread scheduling); in async mode that order is the
  /// per-subscriber FIFO order of the outboxes. Returns notifications
  /// delivered (inline) or accepted (async). Thread-safe (concurrent
  /// publishers are serialised internally; control operations are not
  /// blocked).
  std::size_t publish_batch(std::span<const Event> events);

  /// Async mode: block until every notification accepted by publishes that
  /// returned before this call has been delivered or dropped. Inline mode:
  /// no-op. Never call from a delivery callback.
  void flush();

  /// Per-subscriber delivery counters (async mode; nullopt for unknown
  /// subscribers or under inline delivery).
  [[nodiscard]] std::optional<DeliveryStats> delivery_stats(
      SubscriberId subscriber) const;

  [[nodiscard]] DeliveryMode delivery_mode() const {
    return delivery_ == nullptr ? DeliveryMode::Inline : DeliveryMode::Async;
  }

  /// Generation of the most recently issued control command. A command's
  /// effects are visible to every batch started after each shard's applied
  /// generation (shard_applied_generation) reaches the command's issue
  /// point; control_generation() right after a control call is a
  /// conservative fence for it.
  [[nodiscard]] std::uint64_t control_generation() const {
    return issue_generation_.load(std::memory_order_acquire);
  }

  [[nodiscard]] std::uint64_t shard_applied_generation(
      std::size_t shard) const {
    NCPS_EXPECTS(shard < shards_.size());
    return shards_[shard]->fence.applied();
  }

  /// Block until every shard has applied all control commands issued at or
  /// before `generation`. Multi-shard (or multi-worker) brokers run a
  /// dedicated apply thread, so this is self-driving: queued commands apply
  /// concurrently with any in-flight batch and the wait is bounded by the
  /// grace period of the chunks in flight, not by batch size. Only on a
  /// seed broker (one shard, one worker, no threads) is it passive — some
  /// thread must drive batches (or quiesce) forward, as before.
  void wait_applied(std::uint64_t generation);

  /// Full control-plane barrier: waits for the in-flight batch (deliveries
  /// included), then applies every queued command on every shard; in async
  /// mode it additionally flushes the delivery plane. After quiesce()
  /// returns, subscriptions unsubscribed (and subscribers unregistered)
  /// before the call receive no further notifications — in either delivery
  /// mode.
  void quiesce();

  /// Subscriptions currently applied to the engines (excludes commands
  /// still queued behind an in-flight batch; exact after quiesce()).
  [[nodiscard]] std::size_t subscription_count() const;
  [[nodiscard]] std::size_t subscriber_count() const;
  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }
  /// Direct engine access for tests/inspection; callers must ensure no
  /// batch or control command is concurrently touching the shard.
  [[nodiscard]] FilterEngine& shard_engine(std::size_t shard) {
    NCPS_EXPECTS(shard < shards_.size());
    return *shards_[shard]->engine;
  }
  /// Subscriptions currently placed on one shard (load-balance visibility).
  [[nodiscard]] std::size_t shard_subscription_count(std::size_t shard) const;
  [[nodiscard]] AttributeRegistry& attributes() { return *attrs_; }
  [[nodiscard]] MemoryBreakdown memory() const;

  /// Point-in-time telemetry snapshot: every registry cell (publish/latency
  /// counters and histograms, the control-apply-latency histogram, delivery
  /// and journal cells) plus values sampled under the broker's locks —
  /// per-shard cumulative match stats, control-plane apply lag and queue
  /// depth, epoch-reclaim deferred counts, outbox gauges. Thread-safe
  /// and concurrent with publishing (it takes each shard mutex briefly, one
  /// at a time); never call it from a delivery callback, whose thread may
  /// hold a shard mutex through the publish path. Render with
  /// to_prometheus() / to_json().
  [[nodiscard]] obs::MetricsSnapshot metrics() const;

  // ---- persistence (only when config.storage.enabled) ----

  [[nodiscard]] bool storage_enabled() const { return journal_ != nullptr; }

  /// Write a snapshot of the whole subscription state and truncate the
  /// journal. A full barrier, strictly stronger than quiesce(): it holds the
  /// publish lock (waiting out the in-flight batch and its deliveries),
  /// flushes async delivery, then freezes the *control plane* too
  /// (control_mutex_ + every shard mutex) before draining — quiesce() alone
  /// is NOT a snapshot fence, because control threads may re-queue commands
  /// on shards it has already drained. With every lock held the generation
  /// fences are asserted to have caught up with the issue generation; only
  /// then is the state serialised. Atomic on disk (temp + sync + rename);
  /// a crash anywhere leaves either the old snapshot with the full journal
  /// or the new snapshot (journal records it covers replay idempotently).
  void checkpoint();

  /// Re-attach a delivery callback to a subscriber recovered from storage
  /// (recovered sessions hold their subscriptions but deliver nothing until
  /// reattached). The registration itself is already durable, so nothing is
  /// journaled. Requires the subscriber to exist.
  void reattach_subscriber(SubscriberId subscriber, NotifyFn callback);

  /// Registered subscriber ids, ascending. Thread-safe.
  [[nodiscard]] std::vector<SubscriberId> subscriber_ids() const;
  /// Live subscription ids owned by `subscriber`, ascending (empty for
  /// unknown subscribers). Thread-safe.
  [[nodiscard]] std::vector<SubscriptionId> subscriptions_of(
      SubscriberId subscriber) const;
  /// The subscription's registered text. Tracked only when storage is
  /// enabled; nullopt otherwise or for dead ids. Thread-safe.
  [[nodiscard]] std::optional<std::string> subscription_text(
      SubscriptionId subscription) const;
  /// Journal sequence number of the last durable control operation.
  [[nodiscard]] std::uint64_t journal_sequence() const;

 private:
  struct ShardMatch {
    std::uint32_t event_index;
    SubscriptionId subscription;  // global id
    SubscriberId owner;
  };

  /// One subscription of a bulk registration bound for one shard.
  struct BulkSubscribeItem {
    SubscriptionId global;
    SubscriberId owner;
    parser_detail::RawNodePtr raw;
  };

  /// A control-plane operation bound for one shard's engine.
  struct ShardCommand {
    enum class Kind : std::uint8_t { Subscribe, Unsubscribe, BulkSubscribe };
    Kind kind = Kind::Subscribe;
    SubscriptionId global;
    SubscriberId owner;                    // Subscribe
    parser_detail::RawNodePtr raw;         // Subscribe: pre-parsed tree
    std::vector<BulkSubscribeItem> bulk;   // BulkSubscribe
    std::uint64_t generation = 0;          // broker-wide issue generation
    /// obs::now_ticks() when the control call issued the op (0 when metrics
    /// are off): the ncps_control_apply_latency histogram records
    /// issue → applied, i.e. how long a command sat behind the data plane.
    /// Inline applies record the same interval without a ShardCommand, so
    /// the histogram covers every control op (record_apply_latency).
    std::uint64_t enqueue_tick = 0;
  };

  /// One engine shard: exclusive table + engine + its command queue.
  /// `mutex` serialises *mutators* — control-command application, drains,
  /// bulk loads, snapshots hold it exclusive; metrics sampling and memory
  /// accounting take it shared. Match workers take no lock: they read the
  /// engine (and to_global/owner_of) inside an epoch-pinned EngineView on
  /// `epochs`, and every mutator additionally closes that domain's write
  /// gate (via ShardWriteGuard) around the actual mutation.
  struct Shard {
    PredicateTable table;
    std::unique_ptr<FilterEngine> engine;
    /// Engine-local id → broker-global id (dense by local id value).
    std::vector<SubscriptionId> to_global;
    /// Engine-local id → owning subscriber (dense by local id value), so
    /// delivery never reads control-plane maps.
    std::vector<SubscriberId> owner_of;
    /// Broker-global id value → engine-local id, for routing removals.
    std::unordered_map<std::uint32_t, SubscriptionId> local_of;
    MpscQueue<ShardCommand> commands;
    /// Commands pushed but not yet applied (telemetry only: MpscQueue has no
    /// size, and metrics() must not take the shard mutex to estimate one).
    std::atomic<std::uint64_t> queued_commands{0};
    GenerationFence fence;
    std::shared_mutex mutex;
    /// Epoch read-gate + deferred reclamation over this shard's
    /// reader-visible state (engine structures, to_global/owner_of). One
    /// reader slot per pool worker; null for seed brokers (no pool — the
    /// publish path is sequential and exclusive anyway). Declared last so
    /// its destructor — which runs every deferred deleter — executes while
    /// the engine, forest and table those deleters touch are still alive.
    std::unique_ptr<EpochDomain> epochs;
  };

  /// Where a live global subscription id points (control-plane only).
  struct Route {
    std::uint32_t shard = 0;
    SubscriberId owner;
    bool live = false;
  };

  /// A global id whose unsubscribe has been issued but whose reuse is not
  /// yet safe. Two conditions gate reclamation: the owning shard must have
  /// applied the removal (fence >= generation), and any batch whose
  /// *matching* preceded the application must have finished *delivering* —
  /// its buffered match records still carry the id, and reusing it mid
  /// delivery would misattribute a stale notification to the new
  /// subscription. Delivery completion is observed either directly (the
  /// publish mutex is momentarily free) or via the publish epoch ticking
  /// past `safe_epoch` (set to current+1 once the fence condition holds).
  /// In async delivery mode a third condition follows: outbox batches
  /// enqueued by those publishes also carry the id. They can only sit in
  /// the *owning subscriber's* outbox, so reuse further waits until that
  /// outbox's completed marker passes `safe_accepted` — a snapshot of its
  /// accepted marker taken when the first two conditions were observed
  /// (per-subscriber, because a global counter would be satisfied by other
  /// subscribers' later completions while the stale batch still waits).
  struct RetiredGlobal {
    SubscriptionId global;
    std::uint32_t shard;
    SubscriberId owner;
    std::uint64_t generation;
    std::uint64_t safe_epoch = 0;  // 0 = fence not yet observed applied
    std::uint64_t safe_accepted = kAcceptedUnset;
  };

  static constexpr std::uint64_t kAcceptedUnset = ~std::uint64_t{0};

  /// Inline bulk-subscribe batches at least this large build their phase-1
  /// index on a temporary thread pool; smaller ones build sequentially
  /// (thread spin-up would cost more than it saves).
  static constexpr std::size_t kBulkBuildParallelThreshold = 512;

  class ChunkSink;
  using CallbackMap = std::unordered_map<SubscriberId, NotifyFn>;

  /// Write-side section over one shard's reader-visible state. The caller
  /// already holds shard.mutex (exclusive against other mutators); enter()
  /// additionally closes the shard's epoch gate — blocking new match
  /// readers and waiting out pinned ones, a wait bounded by one in-flight
  /// chunk — and installs the domain as the thread's reclamation target so
  /// engine-internal free sites defer instead of deleting. Lazy: a drain
  /// that finds nothing queued never calls enter() and never pays a grace
  /// period. A no-op throughout on shards without a domain (seed broker).
  /// Destruction reopens the gate and reclaims what the grace period
  /// proved unreachable.
  class ShardWriteGuard {
   public:
    explicit ShardWriteGuard(Shard& shard) : shard_(&shard) {}
    ~ShardWriteGuard() {
      if (entered_) {
        scope_.reset();  // restore the previous TLS reclaim target first
        shard_->epochs->writer_exit();
      }
    }
    ShardWriteGuard(const ShardWriteGuard&) = delete;
    ShardWriteGuard& operator=(const ShardWriteGuard&) = delete;

    /// Idempotent. Call immediately before the first actual mutation.
    void enter() {
      if (entered_ || shard_->epochs == nullptr) return;
      shard_->epochs->writer_enter();
      scope_.emplace(*shard_->epochs);
      entered_ = true;
    }

   private:
    Shard* shard_;
    std::optional<ReclaimScope> scope_;
    bool entered_ = false;
  };

  /// Per-shard match-work totals fed by concurrent match tasks (relaxed
  /// fetch_adds, once per task — never per event). metrics() sums these
  /// with the engine's own cumulative_stats(), which only the legacy
  /// single-threaded publish path grows; the two sources are disjoint.
  struct AtomicMatchStats {
    std::atomic<std::uint64_t> events{0};
    std::atomic<std::uint64_t> fulfilled_predicates{0};
    std::atomic<std::uint64_t> candidates{0};
    std::atomic<std::uint64_t> tree_evaluations{0};
    std::atomic<std::uint64_t> node_evaluations{0};
    std::atomic<std::uint64_t> truth_lookups{0};
    std::atomic<std::uint64_t> hit_increments{0};
    std::atomic<std::uint64_t> counter_comparisons{0};
    std::atomic<std::uint64_t> covering_skips{0};
    std::atomic<std::uint64_t> matches{0};

    void add(const MatchStats& s) {
      events.fetch_add(s.events, std::memory_order_relaxed);
      fulfilled_predicates.fetch_add(s.fulfilled_predicates,
                                     std::memory_order_relaxed);
      candidates.fetch_add(s.candidates, std::memory_order_relaxed);
      tree_evaluations.fetch_add(s.tree_evaluations,
                                 std::memory_order_relaxed);
      node_evaluations.fetch_add(s.node_evaluations,
                                 std::memory_order_relaxed);
      truth_lookups.fetch_add(s.truth_lookups, std::memory_order_relaxed);
      hit_increments.fetch_add(s.hit_increments, std::memory_order_relaxed);
      counter_comparisons.fetch_add(s.counter_comparisons,
                                    std::memory_order_relaxed);
      covering_skips.fetch_add(s.covering_skips, std::memory_order_relaxed);
      matches.fetch_add(s.matches, std::memory_order_relaxed);
    }

    [[nodiscard]] MatchStats load() const {
      MatchStats s;
      s.events = events.load(std::memory_order_relaxed);
      s.fulfilled_predicates =
          fulfilled_predicates.load(std::memory_order_relaxed);
      s.candidates = candidates.load(std::memory_order_relaxed);
      s.tree_evaluations = tree_evaluations.load(std::memory_order_relaxed);
      s.node_evaluations = node_evaluations.load(std::memory_order_relaxed);
      s.truth_lookups = truth_lookups.load(std::memory_order_relaxed);
      s.hit_increments = hit_increments.load(std::memory_order_relaxed);
      s.counter_comparisons =
          counter_comparisons.load(std::memory_order_relaxed);
      s.covering_skips = covering_skips.load(std::memory_order_relaxed);
      s.matches = matches.load(std::memory_order_relaxed);
      return s;
    }
  };

  SubscriptionId allocate_global_locked();
  void issue_unsubscribe_locked(SubscriptionId global, const Route& route);
  // ---- persistence internals (broker_persistence.cpp) ----
  /// Recover snapshot + journal tail into a freshly constructed broker,
  /// then open the journal for appending. Constructor tail; no locks.
  void recover_from_storage();
  /// Stamp the next sequence number on `record`, frame it and commit it
  /// (one write + one sync). Caller holds control_mutex_; called BEFORE the
  /// operation is applied (write-ahead discipline).
  void journal_commit_locked(storage::JournalRecord record);
  void write_snapshot_payload(storage::Writer& w);
  void restore_snapshot_payload(storage::Reader& r);
  void replay_journal_record(const storage::JournalRecord& record);
  void record_text_locked(SubscriptionId global, std::string_view text);
  /// Apply every queued command on `shard` and advance its fence. Caller
  /// holds shard.mutex and supplies the write guard; the gate is entered
  /// lazily before the first command applies, so an empty drain is just a
  /// fence advance. Returns the number of commands applied.
  std::size_t drain_shard(Shard& shard, ShardWriteGuard& gate);
  void apply_command(Shard& shard, ShardCommand&& command);
  /// Record issue tick → applied into ncps_control_apply_latency_seconds
  /// (no-op when metrics are off / the tick is 0). Called for queued
  /// commands at fence advance and for inline applies before the control
  /// call returns, so the histogram covers every control op and its
  /// percentiles do not jump between populations as contention varies.
  void record_apply_latency(std::uint64_t issue_tick);
  SubscriptionId apply_subscribe(Shard& shard, SubscriptionId global,
                                 SubscriberId owner,
                                 const parser_detail::RawNode& raw);
  void apply_unsubscribe(Shard& shard, SubscriptionId global);
  SubscriberId register_subscriber_impl(NotifyFn callback,
                                        BackpressurePolicy policy);
  /// Phases A+B of the publish path: exclusive per-shard drains, then the
  /// (shard × chunk) match fan-out into match_buffers_ — on the
  /// work-stealing pool when one exists, sequentially otherwise (the seed
  /// single-shard path, which uses the engine's legacy match_batch so its
  /// last/cumulative stats keep their single-threaded semantics).
  void run_match_tasks(std::span<const Event> events);
  /// Phase C part 1: merge match_buffers_ into merged_ / event_offsets_ —
  /// per event, ascending global subscription id. The per-event-range merge
  /// tasks run on the pool (an event is merged by exactly one task, into
  /// its precomputed slice of merged_).
  void merge_all(std::span<const Event> events);
  /// Events [first, last): gather each event's matches from the buffers of
  /// the chunks covering it and sort them into merged_'s slice.
  void merge_event_range(std::size_t first, std::size_t last);
  std::size_t merge_and_deliver(std::span<const Event> events,
                                const CallbackMap& callbacks,
                                std::uint64_t publish_tick);
  std::size_t merge_and_enqueue(std::span<const Event> events,
                                std::uint64_t publish_tick);

  AttributeRegistry* attrs_;
  ShardRouter router_;
  BackpressurePolicy delivery_default_policy_ = BackpressurePolicy::Block;
  std::vector<std::unique_ptr<Shard>> shards_;
  /// Match scheduler pool; null only for single-shard single-worker brokers
  /// (the seed sequential publish path).
  std::unique_ptr<WorkStealingPool> pool_;
  MatchScheduler scheduler_ = MatchScheduler::kWorkStealing;
  std::size_t match_chunk_events_ = 0;  // config knob; 0 = adaptive
  /// One reusable match context per pool worker (contexts of one engine
  /// kind are interchangeable across shards). Index = worker id.
  std::vector<std::unique_ptr<MatchContext>> worker_contexts_;
  /// Per-shard concurrent match-work totals (see AtomicMatchStats).
  std::vector<std::unique_ptr<AtomicMatchStats>> shard_match_stats_;

  // ---- persistence state (null / empty unless storage enabled) ----
  storage::StorageOptions storage_;
  storage::Vfs* vfs_ = nullptr;
  std::unique_ptr<storage::CommandJournal> journal_;
  std::uint64_t journal_seq_ = 0;   // last sequence number stamped
  std::uint64_t snapshot_seq_ = 0;  // journal seq the snapshot covers
  /// Registered text per global id (snapshot source + generic-engine
  /// recovery); maintained under control_mutex_.
  std::vector<std::string> texts_;
  EngineKind engine_kind_;
  Normalisation normalisation_;

  /// Serialises publish_batch (and quiesce) — data-plane only; control
  /// operations never take it.
  std::mutex publish_mutex_;

  /// Guards all control-plane bookkeeping below. Publishers never take it:
  /// delivery works off owner ids carried in the match records plus the
  /// copy-on-write callback snapshot.
  mutable std::mutex control_mutex_;
  std::unordered_map<SubscriberId, std::vector<SubscriptionId>>
      subscriptions_by_subscriber_;
  std::vector<Route> routes_;  // dense by global subscription id
  std::vector<SubscriptionId> free_globals_;
  std::vector<RetiredGlobal> retired_globals_;
  std::uint32_t next_subscriber_ = 0;
  std::uint64_t subscribe_sequence_ = 0;  // router key component

  /// Written under control_mutex_ *after* the command is enqueued, so a
  /// drain that snapshots it covers every command at or below the snapshot.
  std::atomic<std::uint64_t> issue_generation_{0};

  /// Completed publish batches (bumped after delivery, still under the
  /// publish mutex). Orders global-id reuse after stale-match delivery.
  std::atomic<std::uint64_t> publish_epoch_{0};

  /// Thread currently holding publish_mutex_, so control operations
  /// re-entered from a delivery callback (which runs on that thread) never
  /// try_lock a mutex their own thread holds — they see "batch in flight"
  /// directly.
  std::atomic<std::thread::id> publishing_thread_{};

  /// True when no batch is in flight — prior batches have delivered, and
  /// any later batch starts after the caller's control command. Safe from
  /// any thread, including delivery callbacks.
  [[nodiscard]] bool publish_idle_probe();

  /// Immutable snapshot of subscriber callbacks; swapped copy-on-write by
  /// the control plane, loaded once per batch by the publisher.
  std::atomic<std::shared_ptr<const CallbackMap>> callbacks_;

  // ---- apply thread (pool brokers only; see apply_loop in the .cpp) ----
  /// Drains every shard whenever a control command is queued, concurrently
  /// with match tasks: this is what decouples control-op apply latency from
  /// batch size. Joined first in the destructor; never started for seed
  /// brokers, whose commands always apply inline.
  std::thread apply_thread_;
  std::mutex apply_cv_mutex_;
  std::condition_variable apply_cv_;
  bool apply_stop_ = false;  // guarded by apply_cv_mutex_
  /// Level-triggered wake request, guarded by apply_cv_mutex_. Set by
  /// signal_apply(), cleared by the apply loop before each drain pass.
  /// Needed beyond apply_pending() because wait_applied() kicks the loop to
  /// advance *idle* shards' fences past an inline-applied generation — a
  /// state with nothing queued anywhere.
  bool apply_kick_ = false;
  void apply_loop();
  /// Request one apply-loop drain pass (no-op without an apply thread):
  /// after pushing a command, and from wait_applied() so passive fences
  /// catch up without a publish.
  void signal_apply();
  [[nodiscard]] bool apply_pending() const;

  // ---- per-batch data-plane state (touched only under publish_mutex_,
  //      plus by that batch's own match/merge tasks) ----
  /// Events per chunk and chunks per shard for the in-flight batch.
  std::size_t chunk_events_ = 0;
  std::size_t chunk_count_ = 0;
  /// One buffer per (shard × chunk) match task, indexed
  /// shard * chunk_count_ + chunk; capacity persists across batches.
  std::vector<std::vector<ShardMatch>> match_buffers_;
  /// Merged batch output: merged_[event_offsets_[e] .. event_offsets_[e+1])
  /// is event e's matches, ascending global subscription id.
  std::vector<ShardMatch> merged_;
  std::vector<std::size_t> event_offsets_;

  /// Telemetry plane. The registry owns every hot cell; cells_ bundles
  /// stable references for the instrumentation sites and doubles as the
  /// runtime gate (null when config.metrics is false — sites check the
  /// pointer, not a flag). Declared before delivery_ so the executor
  /// workers' cells outlive their last write.
  obs::MetricsRegistry registry_;
  std::unique_ptr<obs::BrokerMetrics> cells_;

  /// Async delivery plane; null under inline delivery. Declared last so its
  /// destruction (which joins the executor workers) precedes everything the
  /// in-flight callbacks could reference.
  std::unique_ptr<DeliveryPlane> delivery_;
};

}  // namespace ncps
