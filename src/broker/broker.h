// Single-node broker: subscriber sessions around a filtering engine.
//
// Broker is the shards=1 specialisation of ShardedBroker — one engine, one
// predicate table, no worker threads, the exact seed semantics — kept as its
// own type because it is the deployment surface most callers want:
// subscribers register textual subscriptions, publishers push events, and
// matching subscribers receive notifications through their callbacks. The
// filtering engine is pluggable (any of the paper's three algorithms),
// defaulting to the non-canonical engine. For multi-core matching, construct
// a ShardedBroker with shard_count > 1 instead; both types share one code
// path, so behaviour (delivery counts, id allocation, memory breakdown
// names) is identical.
//
// The attribute registry is shared across brokers (an overlay-wide schema);
// the predicate table and engine are per-broker, as in the paper's model
// where each filtering node owns its index structures.
#pragma once

#include <memory>

#include "broker/sharded_broker.h"

namespace ncps {

/// Single-broker configuration surface: the engine choice plus the delivery
/// plane setup (async delivery with per-subscriber outboxes is opt-in; the
/// default is the seed's inline delivery).
struct BrokerOptions {
  EngineKind engine = EngineKind::NonCanonical;
  /// Forest normalisation for the non-canonical engine (shared_forest.h).
  Normalisation normalisation = Normalisation::None;
  DeliveryOptions delivery{};
  /// Crash-recoverable subscription store (storage/snapshot.h); default off.
  storage::StorageOptions storage{};
  /// Runtime telemetry gate (see ShardedBrokerConfig::metrics).
  bool metrics = true;
};

class Broker : public ShardedBroker {
 public:
  explicit Broker(AttributeRegistry& attrs,
                  EngineKind engine = EngineKind::NonCanonical)
      : Broker(attrs, BrokerOptions{.engine = engine}) {}

  Broker(AttributeRegistry& attrs, BrokerOptions options)
      : ShardedBroker(attrs,
                      ShardedBrokerConfig{.shard_count = 1,
                                          .engine = options.engine,
                                          .normalisation =
                                              options.normalisation,
                                          .delivery = options.delivery,
                                          .storage = options.storage,
                                          .metrics = options.metrics}) {}

  /// The engine holds a reference to the broker-owned predicate table, so a
  /// Broker pins its address (copy and move are deleted in the base class).
  /// create() is the enforced way to get a relocatable broker handle.
  [[nodiscard]] static std::unique_ptr<Broker> create(
      AttributeRegistry& attrs, EngineKind engine = EngineKind::NonCanonical);
  [[nodiscard]] static std::unique_ptr<Broker> create(AttributeRegistry& attrs,
                                                      BrokerOptions options);

  [[nodiscard]] FilterEngine& engine() { return shard_engine(0); }
};

}  // namespace ncps
