// Single-node broker: subscriber sessions around a filtering engine.
//
// The broker is the deployment surface of the library: subscribers register
// textual subscriptions, publishers push events, and matching subscribers
// receive notifications through their callbacks. The filtering engine is
// pluggable (any of the paper's three algorithms), defaulting to the
// non-canonical engine.
//
// The attribute registry is shared across brokers (an overlay-wide schema);
// the predicate table and engine are per-broker, as in the paper's model
// where each filtering node owns its index structures.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/ids.h"
#include "engine/engine_factory.h"
#include "event/event.h"
#include "event/schema.h"
#include "subscription/parser.h"

namespace ncps {

struct Notification {
  SubscriberId subscriber;
  SubscriptionId subscription;
  const Event* event = nullptr;  ///< valid for the duration of the callback
};

class Broker {
 public:
  using NotifyFn = std::function<void(const Notification&)>;

  explicit Broker(AttributeRegistry& attrs,
                  EngineKind engine = EngineKind::NonCanonical)
      : attrs_(&attrs), engine_(make_engine(engine, table_)) {}

  // The engine holds a reference to table_; moving a Broker would leave the
  // engine pointing at the moved-from table. Heap-allocate brokers instead.
  Broker(const Broker&) = delete;
  Broker& operator=(const Broker&) = delete;
  Broker(Broker&&) = delete;
  Broker& operator=(Broker&&) = delete;

  /// Open a subscriber session.
  SubscriberId register_subscriber(NotifyFn callback);

  /// Close a session, dropping all its subscriptions.
  void unregister_subscriber(SubscriberId subscriber);

  /// Register a subscription for a subscriber. Throws ParseError on
  /// malformed text.
  SubscriptionId subscribe(SubscriberId subscriber, std::string_view text);

  /// Remove one subscription. Returns false if unknown.
  bool unsubscribe(SubscriptionId subscription);

  /// Match an event and synchronously notify all matching subscribers.
  /// Returns the number of notifications delivered.
  std::size_t publish(const Event& event);

  [[nodiscard]] std::size_t subscription_count() const {
    return engine_->subscription_count();
  }
  [[nodiscard]] std::size_t subscriber_count() const {
    return subscribers_.size();
  }
  [[nodiscard]] FilterEngine& engine() { return *engine_; }
  [[nodiscard]] AttributeRegistry& attributes() { return *attrs_; }
  [[nodiscard]] MemoryBreakdown memory() const;

 private:
  AttributeRegistry* attrs_;
  PredicateTable table_;
  std::unique_ptr<FilterEngine> engine_;

  std::unordered_map<SubscriberId, NotifyFn> subscribers_;
  std::unordered_map<SubscriptionId, SubscriberId> subscription_owner_;
  std::unordered_map<SubscriberId, std::vector<SubscriptionId>>
      subscriptions_by_subscriber_;
  std::uint32_t next_subscriber_ = 0;
  std::vector<SubscriptionId> match_scratch_;
};

}  // namespace ncps
