// ShardedBroker persistence: snapshot payload grammar, journal replay and
// the checkpoint fence (DESIGN.md §6).
//
// Snapshot payload (inside the framed snapshot file, storage/snapshot.h):
//
//   u8  engine kind            — must match the recovering broker's config
//   u8  normalisation          — likewise
//   varint shard_count         — likewise
//   varint covered_seq         — journal sequence the snapshot covers
//   varint next_subscriber
//   varint subscribe_sequence  — router key; replay re-routes with it
//   varint attr_count, then attr_count strings
//       — the attribute-name dictionary, in AttributeId order. The
//         AttributeRegistry is process-wide and shared across brokers, so
//         numeric ids differ between runs; recovery re-interns each name
//         and remaps every stored predicate through the result.
//   varint subscriber_count, then ids ascending
//   varint route_bound         — dense route-table size (dead slots included)
//   varint live_count, then per live route ascending by global id:
//       varint global, varint shard, varint owner, string text
//   per shard, in shard order:
//       u8 tag — 1: the engine dumped its full state (forest snapshot):
//                   engine save_state() bytes, then varint map_count and
//                   map_count (varint local, varint global) pairs
//               0: generic engine — recovery re-subscribes from the route
//                   texts through the bulk path; nothing further stored
//
// Everything read back is validated before it is trusted: counts are
// bounded, ids must be live/unique, and the per-shard local↔global map must
// be a bijection onto the engine's live subscriptions — an unmapped live
// local id would send ShardSink indexing past to_global.
#include <algorithm>
#include <string>
#include <utility>

#include "broker/sharded_broker.h"
#include "common/contracts.h"
#include "storage/serializer.h"

namespace ncps {

void ShardedBroker::recover_from_storage() {
  // Constructor tail: single-threaded, no locks needed, every member
  // default-initialised. Failures throw out of the constructor — a broker
  // never starts on a state it could not fully recover.
  vfs_ = storage_.vfs != nullptr ? storage_.vfs : &storage::posix_vfs();
  vfs_->create_directories(storage_.directory);

  const std::optional<std::string> payload =
      storage::read_snapshot_payload(*vfs_, storage_.directory);
  const std::string jpath = storage::journal_path(storage_.directory);
  storage::CommandJournal::ReplayResult replayed =
      storage::CommandJournal::replay(*vfs_, jpath);

  if (payload.has_value()) {
    storage::Reader r(*payload);
    restore_snapshot_payload(r);
    if (!r.done()) {
      throw StorageError("snapshot payload has trailing bytes");
    }
  }

  // The snapshot-journal handshake: only records above the covered sequence
  // are replayed, so a crash between the snapshot rename and the journal
  // truncation (which leaves a new snapshot alongside a full journal)
  // recovers to exactly the same state as a crash after both.
  for (const storage::JournalRecord& record : replayed.records) {
    if (record.seq <= snapshot_seq_) continue;
    replay_journal_record(record);
  }
  journal_seq_ = std::max(snapshot_seq_, replayed.max_seq);

  // Dead route slots become the free list, smallest id on top, matching the
  // allocation order a live broker would have converged to.
  free_globals_.clear();
  for (std::size_t g = routes_.size(); g-- > 0;) {
    if (!routes_[g].live) {
      free_globals_.push_back(SubscriptionId(static_cast<std::uint32_t>(g)));
    }
  }
  if (texts_.size() < routes_.size()) texts_.resize(routes_.size());

  journal_ = std::make_unique<storage::CommandJournal>(
      *vfs_, jpath, storage_.sync_on_commit);
  journal_->open_for_append(replayed);
}

void ShardedBroker::journal_commit_locked(storage::JournalRecord record) {
  // Sequence numbers are stamped at commit time, so they are strictly
  // increasing in journal order regardless of which control operation is
  // committing. A failed commit leaves a gap — harmless, replay only
  // requires strict increase.
  record.seq = ++journal_seq_;
  journal_->append(record);
  if (cells_ == nullptr) {
    journal_->commit();
    return;
  }
  const std::uint64_t start = obs::now_ticks();
  journal_->commit();
  const std::uint64_t end = obs::now_ticks();
  cells_->journal_commits.add();
  cells_->journal_bytes.add(journal_->last_commit_bytes());
  cells_->journal_commit_latency.record(end > start ? end - start : 0);
  if (journal_->last_sync_ns() != 0) {
    cells_->journal_fsync_latency.record(journal_->last_sync_ns());
  }
}

void ShardedBroker::record_text_locked(SubscriptionId global,
                                       std::string_view text) {
  if (texts_.size() <= global.value()) texts_.resize(global.value() + 1);
  texts_[global.value()].assign(text.data(), text.size());
}

void ShardedBroker::write_snapshot_payload(storage::Writer& w) {
  w.u8(static_cast<std::uint8_t>(engine_kind_));
  w.u8(static_cast<std::uint8_t>(normalisation_));
  w.varint(shards_.size());
  w.varint(journal_seq_);
  w.varint(next_subscriber_);
  w.varint(subscribe_sequence_);

  // Attribute dictionary. Only ids below the registry's current size can
  // appear in stored predicates (interning is append-only).
  const std::size_t attr_count = attrs_->size();
  w.varint(attr_count);
  for (std::size_t i = 0; i < attr_count; ++i) {
    w.string(attrs_->name(AttributeId(static_cast<std::uint32_t>(i))));
  }

  std::vector<SubscriberId> subscribers;
  subscribers.reserve(subscriptions_by_subscriber_.size());
  for (const auto& [id, subs] : subscriptions_by_subscriber_) {
    subscribers.push_back(id);
  }
  std::sort(subscribers.begin(), subscribers.end());
  w.varint(subscribers.size());
  for (const SubscriberId id : subscribers) w.varint(id.value());

  w.varint(routes_.size());
  std::size_t live = 0;
  for (const Route& route : routes_) live += route.live ? 1 : 0;
  w.varint(live);
  for (std::size_t g = 0; g < routes_.size(); ++g) {
    const Route& route = routes_[g];
    if (!route.live) continue;
    w.varint(g);
    w.varint(route.shard);
    w.varint(route.owner.value());
    NCPS_ASSERT(g < texts_.size() && !texts_[g].empty());
    w.string(texts_[g]);
  }

  for (const auto& shard : shards_) {
    if (shard->engine->supports_state_snapshot()) {
      w.u8(1);
      shard->engine->prepare_snapshot();
      shard->engine->save_state(w);
      std::size_t mapped = 0;
      for (const SubscriptionId global : shard->to_global) {
        mapped += global.valid() ? 1 : 0;
      }
      w.varint(mapped);
      for (std::size_t local = 0; local < shard->to_global.size(); ++local) {
        if (!shard->to_global[local].valid()) continue;
        w.varint(local);
        w.varint(shard->to_global[local].value());
      }
    } else {
      w.u8(0);
    }
  }
}

void ShardedBroker::restore_snapshot_payload(storage::Reader& r) {
  if (r.u8() != static_cast<std::uint8_t>(engine_kind_)) {
    throw StorageError("snapshot engine kind does not match configuration");
  }
  if (r.u8() != static_cast<std::uint8_t>(normalisation_)) {
    throw StorageError("snapshot normalisation does not match configuration");
  }
  if (r.varint_max(1u << 20, "shard count") != shards_.size()) {
    throw StorageError("snapshot shard count does not match configuration");
  }
  snapshot_seq_ = r.varint();
  next_subscriber_ =
      static_cast<std::uint32_t>(r.varint_max(0xffffffffu, "next subscriber"));
  subscribe_sequence_ = r.varint();

  const std::uint64_t attr_count = r.varint_max(1u << 24, "attribute count");
  std::vector<AttributeId> attr_remap;
  attr_remap.reserve(attr_count);
  for (std::uint64_t i = 0; i < attr_count; ++i) {
    const std::string name = r.string();
    if (name.empty()) throw StorageError("empty attribute name in snapshot");
    attr_remap.push_back(attrs_->intern(name));
  }

  const std::uint64_t subscriber_count =
      r.varint_max(1u << 28, "subscriber count");
  std::uint64_t prev_subscriber = 0;
  for (std::uint64_t i = 0; i < subscriber_count; ++i) {
    const std::uint64_t id = r.varint_max(0xffffffffu, "subscriber id");
    if (i > 0 && id <= prev_subscriber) {
      throw StorageError("subscriber ids not ascending in snapshot");
    }
    prev_subscriber = id;
    if (id >= next_subscriber_) {
      throw StorageError("subscriber id beyond next_subscriber in snapshot");
    }
    subscriptions_by_subscriber_.emplace(
        SubscriberId(static_cast<std::uint32_t>(id)),
        std::vector<SubscriptionId>{});
  }

  const std::uint64_t route_bound = r.varint_max(1u << 30, "route bound");
  routes_.assign(route_bound, Route{});
  texts_.assign(route_bound, std::string{});
  const std::uint64_t live_count = r.varint_max(route_bound, "live routes");
  std::vector<std::size_t> live_per_shard(shards_.size(), 0);
  std::uint64_t prev_global = 0;
  for (std::uint64_t i = 0; i < live_count; ++i) {
    const std::uint64_t g = r.varint_max(route_bound - 1, "route id");
    if (i > 0 && g <= prev_global) {
      throw StorageError("route ids not ascending in snapshot");
    }
    prev_global = g;
    const std::uint64_t shard = r.varint_max(shards_.size() - 1, "route shard");
    const std::uint64_t owner = r.varint_max(0xffffffffu, "route owner");
    const SubscriberId owner_id(static_cast<std::uint32_t>(owner));
    const auto owner_it = subscriptions_by_subscriber_.find(owner_id);
    if (owner_it == subscriptions_by_subscriber_.end()) {
      throw StorageError("route owned by unregistered subscriber");
    }
    const std::string text = r.string();
    if (text.empty()) throw StorageError("empty subscription text in snapshot");
    routes_[g] = Route{static_cast<std::uint32_t>(shard), owner_id,
                       /*live=*/true};
    texts_[g] = text;
    owner_it->second.push_back(SubscriptionId(static_cast<std::uint32_t>(g)));
    ++live_per_shard[shard];
  }

  // Recovery-time build pool: engine state loads and bulk index builds take
  // a generic ThreadPool (the match scheduler's work-stealing pool is not
  // one). Constructor tail, so a temporary sized to the match pool is fine.
  std::unique_ptr<ThreadPool> build_pool;
  if (pool_ != nullptr) {
    build_pool = std::make_unique<ThreadPool>(pool_->thread_count());
  }

  for (std::size_t s = 0; s < shards_.size(); ++s) {
    Shard& shard = *shards_[s];
    const std::uint8_t tag = r.u8();
    if (tag == 1) {
      if (!shard.engine->supports_state_snapshot()) {
        throw StorageError(
            "snapshot has engine state for an engine without snapshots");
      }
      shard.engine->load_state(r, attr_remap, build_pool.get());
      const std::uint64_t mapped =
          r.varint_max(route_bound, "shard subscription map");
      if (mapped != shard.engine->subscription_count() ||
          mapped != live_per_shard[s]) {
        throw StorageError("shard subscription map count mismatch");
      }
      for (std::uint64_t i = 0; i < mapped; ++i) {
        const std::uint64_t local = r.varint_max(0xfffffffeu, "local id");
        const std::uint64_t global = r.varint_max(route_bound - 1, "mapped id");
        const SubscriptionId local_id(static_cast<std::uint32_t>(local));
        const SubscriptionId global_id(static_cast<std::uint32_t>(global));
        if (!shard.engine->owns_subscription(local_id)) {
          throw StorageError("mapped local id is not live in its engine");
        }
        if (!routes_[global].live || routes_[global].shard != s) {
          throw StorageError("mapped global id does not route to this shard");
        }
        if (shard.to_global.size() <= local) {
          shard.to_global.resize(local + 1, SubscriptionId::invalid());
          shard.owner_of.resize(local + 1, SubscriberId::invalid());
        }
        if (shard.to_global[local].valid()) {
          throw StorageError("duplicate local id in shard subscription map");
        }
        if (!shard.local_of
                 .emplace(static_cast<std::uint32_t>(global), local_id)
                 .second) {
          throw StorageError("duplicate global id in shard subscription map");
        }
        shard.to_global[local] = global_id;
        shard.owner_of[local] = routes_[global].owner;
      }
      // mapped == live(engine) == live(routes on this shard) and every pair
      // was distinct on both sides, so local↔global is a bijection: no live
      // engine id can reach ShardSink unmapped.
    } else if (tag == 0) {
      // Generic engine: rebuild by re-subscribing the stored texts through
      // the bulk path — semantically identical adds, batch-built index.
      shard.engine->begin_bulk_load();
      for (std::uint64_t g = 0; g < route_bound; ++g) {
        if (!routes_[g].live || routes_[g].shard != s) continue;
        try {
          const parser_detail::RawNodePtr raw = parse_raw(texts_[g], *attrs_);
          apply_subscribe(shard, SubscriptionId(static_cast<std::uint32_t>(g)),
                          routes_[g].owner, *raw);
        } catch (const StorageError&) {
          throw;
        } catch (const std::exception& e) {
          throw StorageError(
              std::string("stored subscription rejected on replay: ") +
              e.what());
        }
      }
      shard.engine->finish_bulk_load(build_pool.get());
    } else {
      throw StorageError("unknown shard snapshot tag");
    }
  }
}

void ShardedBroker::replay_journal_record(
    const storage::JournalRecord& record) {
  using Type = storage::JournalRecord::Type;

  // Re-routes through the same (subscriber, subscribe_sequence_) key the
  // live broker used, so replayed subscriptions land on the same shards.
  const auto replay_subscribe = [&](SubscriberId owner, std::uint32_t global,
                                    const std::string& text) {
    const auto owner_it = subscriptions_by_subscriber_.find(owner);
    if (owner_it == subscriptions_by_subscriber_.end()) {
      throw StorageError("journal subscribe for unknown subscriber");
    }
    const std::uint32_t s = router_.route(owner, subscribe_sequence_);
    ++subscribe_sequence_;
    if (global >= routes_.size()) {
      routes_.resize(global + 1);
      texts_.resize(global + 1);
    }
    if (routes_[global].live) {
      throw StorageError("journal subscribe reuses a live subscription id");
    }
    try {
      const parser_detail::RawNodePtr raw = parse_raw(text, *attrs_);
      apply_subscribe(*shards_[s], SubscriptionId(global), owner, *raw);
    } catch (const StorageError&) {
      throw;
    } catch (const std::exception& e) {
      throw StorageError(
          std::string("journaled subscription rejected on replay: ") +
          e.what());
    }
    routes_[global] = Route{s, owner, /*live=*/true};
    texts_[global] = text;
    owner_it->second.push_back(SubscriptionId(global));
  };

  switch (record.type) {
    case Type::RegisterSubscriber: {
      const SubscriberId id(record.subscriber);
      if (!subscriptions_by_subscriber_
               .emplace(id, std::vector<SubscriptionId>{})
               .second) {
        throw StorageError("journal registers an existing subscriber");
      }
      next_subscriber_ = std::max(next_subscriber_, record.subscriber + 1);
      break;
    }
    case Type::UnregisterSubscriber: {
      const auto it =
          subscriptions_by_subscriber_.find(SubscriberId(record.subscriber));
      if (it == subscriptions_by_subscriber_.end()) {
        throw StorageError("journal unregisters an unknown subscriber");
      }
      for (const SubscriptionId sub : it->second) {
        Route& route = routes_[sub.value()];
        route.live = false;
        apply_unsubscribe(*shards_[route.shard], sub);
        texts_[sub.value()].clear();
      }
      subscriptions_by_subscriber_.erase(it);
      break;
    }
    case Type::Subscribe:
      replay_subscribe(SubscriberId(record.subscriber), record.global,
                       record.text);
      break;
    case Type::Unsubscribe: {
      if (record.global >= routes_.size() || !routes_[record.global].live) {
        throw StorageError("journal unsubscribes a dead subscription");
      }
      Route& route = routes_[record.global];
      route.live = false;
      auto& list = subscriptions_by_subscriber_[route.owner];
      for (std::size_t i = 0; i < list.size(); ++i) {
        if (list[i].value() == record.global) {
          list[i] = list.back();
          list.pop_back();
          break;
        }
      }
      apply_unsubscribe(*shards_[route.shard], SubscriptionId(record.global));
      texts_[record.global].clear();
      break;
    }
    case Type::BulkSubscribe:
      for (const storage::JournalRecord::BulkItem& item : record.bulk) {
        replay_subscribe(SubscriberId(record.subscriber), item.global,
                         item.text);
      }
      break;
  }
}

void ShardedBroker::checkpoint() {
  NCPS_EXPECTS(journal_ != nullptr);
  // Wall-clock span of the whole barrier + serialisation — lock waits
  // included, since that is the stall a checkpoint inflicts on the broker.
  const std::uint64_t checkpoint_start =
      cells_ == nullptr ? 0 : obs::now_ticks();
  // The snapshot fence, strictly stronger than quiesce(): the publish lock
  // waits out the in-flight batch, the flush completes async deliveries,
  // and — the part quiesce() lacks — the control lock plus every shard lock
  // freeze the control plane, so no thread can enqueue a command on a shard
  // after its drain. Lock order publish → control is safe: control-side
  // code only ever try_locks the publish mutex (publish_idle_probe).
  const std::lock_guard<std::mutex> publish_lock(publish_mutex_);
  if (delivery_ != nullptr) delivery_->flush();
  const std::lock_guard<std::mutex> control_lock(control_mutex_);
  std::vector<std::unique_lock<std::shared_mutex>> shard_locks;
  shard_locks.reserve(shards_.size());
  for (auto& shard : shards_) shard_locks.emplace_back(shard->mutex);
  for (auto& shard : shards_) {
    ShardWriteGuard gate(*shard);
    drain_shard(*shard, gate);
  }

  // With every mutex held there is nothing left to issue or apply; if a
  // fence still lags the issue generation, some command escaped the drains
  // and the snapshot would silently drop it.
  const std::uint64_t issued =
      issue_generation_.load(std::memory_order_acquire);
  for (const auto& shard : shards_) {
    NCPS_ASSERT(shard->fence.applied() >= issued &&
                "snapshot fence violated: shard lags issue generation");
  }

  // Run every deferred reclamation now: no batch is in flight and no reader
  // is pinned (the publish lock is held), so the epoch domains may free
  // unconditionally. prepare_snapshot/compact below then see the canonical
  // quarantine-free shape save_state() expects.
  for (auto& shard : shards_) {
    if (shard->epochs != nullptr) shard->epochs->flush_reclaim();
  }

  storage::Writer payload;
  write_snapshot_payload(payload);
  storage::write_snapshot_file(*vfs_, storage_.directory, payload.bytes());
  // The rename is durable; the journal's records are now all covered by the
  // snapshot (covered_seq == journal_seq_), so the journal can restart. A
  // crash before reset() replays the old records idempotently (their seqs
  // are below the new snapshot's covered seq).
  snapshot_seq_ = journal_seq_;
  journal_->reset();
  if (cells_ != nullptr) {
    cells_->checkpoints.add();
    const std::uint64_t end = obs::now_ticks();
    cells_->checkpoint_duration.record(
        end > checkpoint_start ? end - checkpoint_start : 0);
  }
}

void ShardedBroker::reattach_subscriber(SubscriberId subscriber,
                                        NotifyFn callback) {
  NCPS_EXPECTS(callback != nullptr);
  const std::lock_guard<std::mutex> lock(control_mutex_);
  NCPS_EXPECTS(subscriptions_by_subscriber_.contains(subscriber));
  if (delivery_ != nullptr) {
    delivery_->add_subscriber(subscriber, std::move(callback),
                              delivery_default_policy_);
  } else {
    auto updated = std::make_shared<CallbackMap>(*callbacks_.load());
    (*updated)[subscriber] = std::move(callback);
    callbacks_.store(std::shared_ptr<const CallbackMap>(std::move(updated)));
  }
}

std::vector<SubscriberId> ShardedBroker::subscriber_ids() const {
  const std::lock_guard<std::mutex> lock(control_mutex_);
  std::vector<SubscriberId> out;
  out.reserve(subscriptions_by_subscriber_.size());
  for (const auto& [id, subs] : subscriptions_by_subscriber_) {
    out.push_back(id);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<SubscriptionId> ShardedBroker::subscriptions_of(
    SubscriberId subscriber) const {
  const std::lock_guard<std::mutex> lock(control_mutex_);
  const auto it = subscriptions_by_subscriber_.find(subscriber);
  if (it == subscriptions_by_subscriber_.end()) return {};
  std::vector<SubscriptionId> out = it->second;
  std::sort(out.begin(), out.end());
  return out;
}

std::optional<std::string> ShardedBroker::subscription_text(
    SubscriptionId subscription) const {
  const std::lock_guard<std::mutex> lock(control_mutex_);
  if (!subscription.valid() || subscription.value() >= routes_.size() ||
      !routes_[subscription.value()].live ||
      subscription.value() >= texts_.size() ||
      texts_[subscription.value()].empty()) {
    return std::nullopt;
  }
  return texts_[subscription.value()];
}

std::uint64_t ShardedBroker::journal_sequence() const {
  const std::lock_guard<std::mutex> lock(control_mutex_);
  return journal_seq_;
}

}  // namespace ncps
