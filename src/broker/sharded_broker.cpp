#include "broker/sharded_broker.h"

#include <algorithm>
#include <string>
#include <thread>

#include "common/contracts.h"

namespace ncps {

/// Streams one shard's matches into its per-shard buffer, translating
/// engine-local subscription ids to broker-global ids. Runs on the shard's
/// worker task; touches only that shard's state.
class ShardedBroker::ShardSink final : public MatchSink {
 public:
  explicit ShardSink(Shard& shard) : shard_(&shard) {}

  void on_match(std::size_t event_index, const Event& /*event*/,
                SubscriptionId local) override {
    shard_->matches.push_back(
        ShardMatch{static_cast<std::uint32_t>(event_index),
                   shard_->to_global[local.value()]});
  }

 private:
  Shard* shard_;
};

ShardedBroker::ShardedBroker(AttributeRegistry& attrs,
                             ShardedBrokerConfig config)
    : attrs_(&attrs), router_(config.shard_count) {
  NCPS_EXPECTS(config.shard_count >= 1);
  shards_.reserve(config.shard_count);
  for (std::size_t s = 0; s < config.shard_count; ++s) {
    auto shard = std::make_unique<Shard>();
    shard->engine = make_engine(config.engine, shard->table);
    shards_.push_back(std::move(shard));
  }
  if (config.shard_count > 1) {
    std::size_t threads = config.worker_threads;
    if (threads == 0) {
      const std::size_t hw = std::thread::hardware_concurrency();
      threads = std::min(config.shard_count, hw == 0 ? std::size_t{1} : hw);
    }
    pool_ = std::make_unique<ThreadPool>(threads);
  }
}

ShardedBroker::~ShardedBroker() = default;

std::unique_ptr<ShardedBroker> ShardedBroker::create(
    AttributeRegistry& attrs, ShardedBrokerConfig config) {
  return std::make_unique<ShardedBroker>(attrs, config);
}

SubscriberId ShardedBroker::register_subscriber(NotifyFn callback) {
  NCPS_EXPECTS(callback != nullptr);
  const SubscriberId id(next_subscriber_++);
  subscribers_.emplace(id, std::move(callback));
  subscriptions_by_subscriber_.emplace(id, std::vector<SubscriptionId>{});
  return id;
}

void ShardedBroker::unregister_subscriber(SubscriberId subscriber) {
  const auto it = subscriptions_by_subscriber_.find(subscriber);
  if (it == subscriptions_by_subscriber_.end()) return;
  for (const SubscriptionId sub : it->second) {
    remove_subscription(sub);
  }
  subscriptions_by_subscriber_.erase(it);
  subscribers_.erase(subscriber);
}

SubscriptionId ShardedBroker::allocate_global() {
  if (!free_globals_.empty()) {
    const SubscriptionId id = free_globals_.back();
    free_globals_.pop_back();
    return id;
  }
  const SubscriptionId id(static_cast<std::uint32_t>(routes_.size()));
  routes_.emplace_back();
  return id;
}

SubscriptionId ShardedBroker::subscribe(SubscriberId subscriber,
                                        std::string_view text) {
  NCPS_EXPECTS(subscribers_.contains(subscriber));
  const std::uint32_t s = router_.route(subscriber, subscribe_sequence_);
  Shard& shard = *shards_[s];
  // Parse into the shard's own table: the predicates of a subscription live
  // (and are refcounted) exactly where its engine lives.
  const ast::Expr expr = parse_subscription(text, *attrs_, shard.table);
  const SubscriptionId local = shard.engine->add(expr.root());
  ++subscribe_sequence_;

  const SubscriptionId global = allocate_global();
  if (shard.to_global.size() <= local.value()) {
    shard.to_global.resize(local.value() + 1, SubscriptionId::invalid());
  }
  shard.to_global[local.value()] = global;
  routes_[global.value()] = Route{s, local, subscriber};
  subscriptions_by_subscriber_[subscriber].push_back(global);
  return global;
}

void ShardedBroker::remove_subscription(SubscriptionId global) {
  Route& route = routes_[global.value()];
  Shard& shard = *shards_[route.shard];
  shard.engine->remove(route.local);
  shard.to_global[route.local.value()] = SubscriptionId::invalid();
  route = Route{};
  free_globals_.push_back(global);
}

bool ShardedBroker::unsubscribe(SubscriptionId subscription) {
  if (!subscription.valid() || subscription.value() >= routes_.size() ||
      !routes_[subscription.value()].local.valid()) {
    return false;
  }
  const SubscriberId owner = routes_[subscription.value()].owner;
  remove_subscription(subscription);
  auto& list = subscriptions_by_subscriber_[owner];
  for (std::size_t i = 0; i < list.size(); ++i) {
    if (list[i] == subscription) {
      list[i] = list.back();
      list.pop_back();
      break;
    }
  }
  return true;
}

void ShardedBroker::run_shard_tasks(std::span<const Event> events) {
  for (auto& shard : shards_) shard->matches.clear();
  const auto shard_task = [&](std::size_t s) {
    Shard& shard = *shards_[s];
    ShardSink sink(shard);
    shard.engine->match_batch(events, sink);
  };
  if (pool_ == nullptr) {
    for (std::size_t s = 0; s < shards_.size(); ++s) shard_task(s);
  } else {
    pool_->parallel_for(shards_.size(), shard_task);
  }
}

std::size_t ShardedBroker::merge_and_deliver(std::span<const Event> events) {
  // Each shard's buffer is already ordered by event index (engines process
  // the batch in order), so a cursor per shard gives each event's slice.
  std::size_t delivered = 0;
  merge_cursor_.assign(shards_.size(), 0);
  for (std::size_t e = 0; e < events.size(); ++e) {
    merge_scratch_.clear();
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      const auto& matches = shards_[s]->matches;
      std::size_t& c = merge_cursor_[s];
      while (c < matches.size() && matches[c].event_index == e) {
        merge_scratch_.push_back(matches[c++].subscription);
      }
    }
    // Ascending global id: the merged order is independent of shard count
    // and thread scheduling.
    std::sort(merge_scratch_.begin(), merge_scratch_.end());
    for (const SubscriptionId sub : merge_scratch_) {
      const Route& route = routes_[sub.value()];
      const auto cb = subscribers_.find(route.owner);
      NCPS_ASSERT(cb != subscribers_.end());
      cb->second(Notification{route.owner, sub, &events[e]});
      ++delivered;
    }
  }
  return delivered;
}

std::size_t ShardedBroker::publish(const Event& event) {
  return publish_batch(std::span<const Event>(&event, 1));
}

std::size_t ShardedBroker::publish_batch(std::span<const Event> events) {
  if (events.empty()) return 0;
  run_shard_tasks(events);
  return merge_and_deliver(events);
}

std::size_t ShardedBroker::subscription_count() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->engine->subscription_count();
  }
  return total;
}

MemoryBreakdown ShardedBroker::memory() const {
  MemoryBreakdown mem;
  if (shards_.size() == 1) {
    // Seed broker component names, so existing breakdown consumers and the
    // memory benches keep working unchanged.
    mem.add_nested("engine/", shards_[0]->engine->memory());
    mem.add_nested("predicates/", shards_[0]->table.memory());
  } else {
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      const std::string prefix = "shard" + std::to_string(s) + "/";
      mem.add_nested(prefix + "engine/", shards_[s]->engine->memory());
      mem.add_nested(prefix + "predicates/", shards_[s]->table.memory());
    }
  }
  return mem;
}

}  // namespace ncps
