#include "broker/sharded_broker.h"

#include <algorithm>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <utility>

#include "common/contracts.h"

namespace ncps {

namespace {

/// Adaptive chunking target: total match tasks per batch aims at this many
/// per pool worker, so a worker that finishes its own slice finds several
/// stealable chunks on a skew-loaded shard's deque. 8 keeps per-task
/// overhead (one shared-lock + one stats fold) well under 1% for the
/// benchmark batch sizes while leaving enough granularity to level a
/// worst-case all-on-one-shard skew.
constexpr std::size_t kMatchTasksPerWorker = 8;

/// Per-event-range merge fan-out (tasks per worker). Merging is cheap per
/// event, so fewer, larger ranges than the match fan-out.
constexpr std::size_t kMergeTasksPerWorker = 4;

/// Hard ceiling on adaptively sized chunks. A mutator's epoch grace period
/// waits out at most the chunks currently pinned, so this cap — not the
/// batch size — bounds control-op apply latency: a 1M-event batch still
/// yields the write gate every <= 512 events per worker. Explicit
/// match_chunk_events and the kPerShard baseline are exempt (callers who
/// pin the chunking own the latency consequence).
constexpr std::size_t kMaxChunkEvents = 512;

}  // namespace

/// Streams one (shard × chunk) task's matches into that task's buffer,
/// translating engine-local subscription ids to broker-global ids and
/// attaching the owning subscriber (so delivery never reads control-plane
/// maps). Runs inside the task's epoch pin (EngineView): to_global and
/// owner_of are only mutated inside the shard's write gate, which waits out
/// every pin first, and the buffer belongs to this task alone.
class ShardedBroker::ChunkSink final : public MatchSink {
 public:
  ChunkSink(Shard& shard, std::vector<ShardMatch>& out)
      : shard_(&shard), out_(&out) {}

  void on_match(std::size_t event_index, const Event& /*event*/,
                SubscriptionId local) override {
    out_->push_back(ShardMatch{static_cast<std::uint32_t>(event_index),
                               shard_->to_global[local.value()],
                               shard_->owner_of[local.value()]});
  }

 private:
  Shard* shard_;
  std::vector<ShardMatch>* out_;
};

ShardedBroker::ShardedBroker(AttributeRegistry& attrs,
                             ShardedBrokerConfig config)
    : attrs_(&attrs),
      router_(config.shard_count, config.placement),
      storage_(config.storage),
      engine_kind_(config.engine),
      normalisation_(config.normalisation) {
  NCPS_EXPECTS(config.shard_count >= 1);
  shards_.reserve(config.shard_count);
  for (std::size_t s = 0; s < config.shard_count; ++s) {
    auto shard = std::make_unique<Shard>();
    shard->engine =
        make_engine(config.engine, shard->table, config.normalisation);
    shards_.push_back(std::move(shard));
  }
  callbacks_.store(std::make_shared<const CallbackMap>());
  if (config.metrics && obs::kMetricsEnabled) {
    cells_ = std::make_unique<obs::BrokerMetrics>(registry_);
  }
  scheduler_ = config.scheduler;
  match_chunk_events_ = config.match_chunk_events;
  std::size_t threads = config.worker_threads;
  if (threads == 0) {
    const std::size_t hw = std::thread::hardware_concurrency();
    threads = std::min(config.shard_count, hw == 0 ? std::size_t{1} : hw);
  }
  if (config.shard_count > 1 || threads > 1) {
    pool_ = std::make_unique<WorkStealingPool>(threads);
    // One context per worker, built from shard 0's engine (all shards run
    // the same engine kind, and contexts of one kind are interchangeable).
    worker_contexts_.reserve(pool_->thread_count());
    for (std::size_t w = 0; w < pool_->thread_count(); ++w) {
      worker_contexts_.push_back(shards_[0]->engine->make_context());
    }
    // One epoch domain per shard, one reader slot per pool worker: match
    // tasks pin their worker's slot, mutators close the write gate. The
    // engines route their internal deferred frees (forest quarantine,
    // posting-block collapse) onto it.
    for (auto& shard : shards_) {
      shard->epochs = std::make_unique<EpochDomain>(pool_->thread_count());
      shard->engine->set_epoch_domain(shard->epochs.get());
    }
  }
  shard_match_stats_.reserve(shards_.size());
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    shard_match_stats_.push_back(std::make_unique<AtomicMatchStats>());
  }
  if (config.delivery.mode == DeliveryMode::Async) {
    delivery_default_policy_ = config.delivery.default_policy;
    delivery_ = std::make_unique<DeliveryPlane>(
        config.delivery, cells_ == nullptr ? nullptr : &cells_->delivery);
  }
  if (storage_.enabled) {
    NCPS_EXPECTS(!storage_.directory.empty());
    recover_from_storage();
  }
  // Last, so it never observes a half-constructed broker: the dedicated
  // apply thread keeps control commands flowing while batches match. Seed
  // brokers (no pool) skip it — their commands always apply inline.
  if (pool_ != nullptr) {
    apply_thread_ = std::thread([this] { apply_loop(); });
  }
}

ShardedBroker::~ShardedBroker() {
  if (apply_thread_.joinable()) {
    {
      const std::lock_guard<std::mutex> lock(apply_cv_mutex_);
      apply_stop_ = true;
    }
    apply_cv_.notify_one();
    apply_thread_.join();
  }
}

std::unique_ptr<ShardedBroker> ShardedBroker::create(
    AttributeRegistry& attrs, ShardedBrokerConfig config) {
  return std::make_unique<ShardedBroker>(attrs, config);
}

SubscriberId ShardedBroker::register_subscriber(NotifyFn callback) {
  const BackpressurePolicy policy =
      delivery_ == nullptr ? BackpressurePolicy::Block
                           : delivery_default_policy_;
  return register_subscriber_impl(std::move(callback), policy);
}

SubscriberId ShardedBroker::register_subscriber(NotifyFn callback,
                                                BackpressurePolicy policy) {
  return register_subscriber_impl(std::move(callback), policy);
}

SubscriberId ShardedBroker::register_subscriber_impl(
    NotifyFn callback, BackpressurePolicy policy) {
  NCPS_EXPECTS(callback != nullptr);
  const std::lock_guard<std::mutex> lock(control_mutex_);
  const SubscriberId id(next_subscriber_);
  // Journal-commit-before-apply: if the commit throws, no broker state has
  // changed yet and the id is simply never handed out.
  if (journal_ != nullptr) {
    storage::JournalRecord record;
    record.type = storage::JournalRecord::Type::RegisterSubscriber;
    record.subscriber = id.value();
    journal_commit_locked(std::move(record));
  }
  ++next_subscriber_;
  subscriptions_by_subscriber_.emplace(id, std::vector<SubscriptionId>{});
  // Exactly one snapshot store owns the callback: the plane's outbox map in
  // async mode, the broker's callback map inline. Maintaining both would
  // double the copy-on-write cost of every control operation for a map the
  // async publish path never reads.
  if (delivery_ != nullptr) {
    delivery_->add_subscriber(id, std::move(callback), policy);
  } else {
    auto updated = std::make_shared<CallbackMap>(*callbacks_.load());
    updated->emplace(id, std::move(callback));
    callbacks_.store(std::shared_ptr<const CallbackMap>(std::move(updated)));
  }
  if (cells_ != nullptr) cells_->register_ops.add();
  return id;
}

void ShardedBroker::unregister_subscriber(SubscriberId subscriber) {
  const std::lock_guard<std::mutex> lock(control_mutex_);
  const auto it = subscriptions_by_subscriber_.find(subscriber);
  if (it == subscriptions_by_subscriber_.end()) return;
  // One record covers the whole cascade: replay re-derives the subscription
  // list from its own reconstructed state, so the per-subscription
  // unsubscribes below are deliberately not journalled.
  if (journal_ != nullptr) {
    storage::JournalRecord record;
    record.type = storage::JournalRecord::Type::UnregisterSubscriber;
    record.subscriber = subscriber.value();
    journal_commit_locked(std::move(record));
  }
  for (const SubscriptionId sub : it->second) {
    Route& route = routes_[sub.value()];
    route.live = false;
    issue_unsubscribe_locked(sub, route);
  }
  subscriptions_by_subscriber_.erase(it);
  if (delivery_ != nullptr) {
    delivery_->remove_subscriber(subscriber);
  } else {
    auto updated = std::make_shared<CallbackMap>(*callbacks_.load());
    updated->erase(subscriber);
    callbacks_.store(std::shared_ptr<const CallbackMap>(std::move(updated)));
  }
  if (cells_ != nullptr) cells_->unregister_ops.add();
}

SubscriptionId ShardedBroker::allocate_global_locked() {
  // Reclaim retired ids (see RetiredGlobal): the owning shard must have
  // applied the removal, and every batch that could still hold the id in
  // its buffered match records must have finished delivering. A free
  // publish mutex proves the latter outright (prior batches hold it
  // through delivery; later batches match after the removal); otherwise
  // wait for the publish epoch to tick past the in-flight batch.
  if (!retired_globals_.empty()) {
    const bool publish_idle = publish_idle_probe();
    const std::uint64_t epoch_now =
        publish_epoch_.load(std::memory_order_acquire);
    std::size_t kept = 0;
    for (RetiredGlobal& retired : retired_globals_) {
      bool reusable = false;
      if (shards_[retired.shard]->fence.applied() >= retired.generation) {
        if (publish_idle ||
            (retired.safe_epoch != 0 && epoch_now >= retired.safe_epoch)) {
          reusable = true;
        } else if (retired.safe_epoch == 0) {
          retired.safe_epoch = epoch_now + 1;
        }
      }
      // Async delivery: the batches those publishes enqueued still carry
      // the id — in the owning subscriber's outbox. First time the epoch
      // condition holds, every such batch has been accepted there, so
      // snapshot that outbox's accepted marker; reuse once its completed
      // marker catches up (everything is delivered, evicted or discarded).
      if (reusable && delivery_ != nullptr) {
        if (retired.safe_accepted == kAcceptedUnset) {
          retired.safe_accepted =
              delivery_->subscriber_accepted_marker(retired.owner);
        }
        reusable = delivery_->subscriber_completed_marker(retired.owner) >=
                   retired.safe_accepted;
      }
      if (reusable) {
        free_globals_.push_back(retired.global);
      } else {
        retired_globals_[kept++] = retired;
      }
    }
    retired_globals_.resize(kept);
  }
  if (!free_globals_.empty()) {
    const SubscriptionId id = free_globals_.back();
    free_globals_.pop_back();
    return id;
  }
  const SubscriptionId id(static_cast<std::uint32_t>(routes_.size()));
  routes_.emplace_back();
  return id;
}

SubscriptionId ShardedBroker::subscribe(SubscriberId subscriber,
                                        std::string_view text) {
  // Phase one of the parse runs on the calling thread so ParseError is
  // synchronous and leaves no trace; only attribute names are interned
  // (idempotent, thread-safe).
  parser_detail::RawNodePtr raw = parse_raw(text, *attrs_);

  const std::lock_guard<std::mutex> lock(control_mutex_);
  NCPS_EXPECTS(subscriptions_by_subscriber_.contains(subscriber));
  const std::uint32_t s = router_.route(subscriber, subscribe_sequence_);
  Shard& shard = *shards_[s];

  SubscriptionId global;
  const std::uint64_t generation =
      issue_generation_.load(std::memory_order_relaxed) + 1;
  const std::uint64_t issue_tick = cells_ == nullptr ? 0 : obs::now_ticks();
  std::unique_lock<std::shared_mutex> shard_lock(shard.mutex,
                                                 std::try_to_lock);
  if (shard_lock.owns_lock()) {
    // No other mutator holds the shard: apply inline (after anything
    // already queued, preserving command order). The write gate is entered
    // only around the actual mutations — a wait bounded by the in-flight
    // chunks, not the batch. The engine's add() validates as it registers,
    // so a failure (e.g. DNF explosion in a counting engine) propagates
    // here with no broker state change — the seed broker's exact semantics.
    ShardWriteGuard gate(shard);
    drain_shard(shard, gate);
    if (journal_ != nullptr) {
      // Journal-commit-before-apply requires the apply to be infallible
      // once the record is durable, so run the queued branch's
      // pre-validation here too before anything is written.
      PredicateTable scratch;
      const ast::Expr expr = intern_tree(*raw, scratch);
      shard.engine->validate(expr.root(), scratch);
    }
    global = allocate_global_locked();
    if (journal_ != nullptr) {
      storage::JournalRecord record;
      record.type = storage::JournalRecord::Type::Subscribe;
      record.subscriber = subscriber.value();
      record.global = global.value();
      record.text = std::string(text);
      try {
        journal_commit_locked(std::move(record));
      } catch (...) {
        free_globals_.push_back(global);  // nothing was registered
        throw;
      }
    }
    try {
      gate.enter();
      apply_subscribe(shard, global, subscriber, *raw);
    } catch (...) {
      free_globals_.push_back(global);  // nothing was registered
      throw;
    }
    issue_generation_.store(generation, std::memory_order_release);
    shard.fence.advance(generation);
    record_apply_latency(issue_tick);
  } else {
    // Shard busy with a batch: pre-validate everything that could fail at
    // application time, then hand the command to the shard's queue. The
    // engine's own validate() (a no-op for non-canonical, the add()-time
    // canonicalisation checks for the counting family) surfaces
    // DnfExplosionError / SubscriptionTooLargeError synchronously, so a
    // queued command can no longer fail; it touches no mutable engine
    // state, so calling it while the engine matches is safe.
    {
      PredicateTable scratch;
      const ast::Expr expr = intern_tree(*raw, scratch);
      shard.engine->validate(expr.root(), scratch);
    }
    global = allocate_global_locked();
    if (journal_ != nullptr) {
      storage::JournalRecord record;
      record.type = storage::JournalRecord::Type::Subscribe;
      record.subscriber = subscriber.value();
      record.global = global.value();
      record.text = std::string(text);
      try {
        journal_commit_locked(std::move(record));
      } catch (...) {
        free_globals_.push_back(global);
        throw;
      }
    }
    ShardCommand command;
    command.kind = ShardCommand::Kind::Subscribe;
    command.global = global;
    command.owner = subscriber;
    command.raw = std::move(raw);
    command.generation = generation;
    command.enqueue_tick = issue_tick;
    shard.queued_commands.fetch_add(1, std::memory_order_relaxed);
    shard.commands.push(std::move(command));
    // Publish the generation only after the push: a drain that snapshots
    // issue_generation_ must find every command at or below its snapshot
    // already linked in the queue.
    issue_generation_.store(generation, std::memory_order_release);
    signal_apply();
  }

  ++subscribe_sequence_;
  routes_[global.value()] = Route{s, subscriber, /*live=*/true};
  subscriptions_by_subscriber_[subscriber].push_back(global);
  if (journal_ != nullptr) record_text_locked(global, text);
  if (cells_ != nullptr) cells_->subscribe_ops.add();
  return global;
}

std::vector<SubscriptionId> ShardedBroker::subscribe_bulk(
    SubscriberId subscriber, std::span<const std::string> texts) {
  std::vector<SubscriptionId> out;
  if (texts.empty()) return out;

  // Parse and validate everything on the calling thread before touching any
  // broker state: a ParseError (or DNF-explosion error from a canonicalising
  // engine) is synchronous and registers nothing. validate() depends only on
  // the engine's configuration, identical across shards, so shard 0 stands
  // in for whichever shard each subscription lands on.
  std::vector<parser_detail::RawNodePtr> raws;
  raws.reserve(texts.size());
  for (const std::string& text : texts) raws.push_back(parse_raw(text, *attrs_));
  {
    PredicateTable scratch;
    for (const parser_detail::RawNodePtr& raw : raws) {
      const ast::Expr expr = intern_tree(*raw, scratch);
      shards_[0]->engine->validate(expr.root(), scratch);
    }
  }

  const std::lock_guard<std::mutex> lock(control_mutex_);
  NCPS_EXPECTS(subscriptions_by_subscriber_.contains(subscriber));

  // Route every subscription and commit the control-plane bookkeeping up
  // front — application can no longer fail, exactly as for queued commands.
  std::vector<std::vector<BulkSubscribeItem>> per_shard(shards_.size());
  out.reserve(texts.size());
  for (parser_detail::RawNodePtr& raw : raws) {
    const std::uint32_t s = router_.route(subscriber, subscribe_sequence_);
    ++subscribe_sequence_;
    const SubscriptionId global = allocate_global_locked();
    routes_[global.value()] = Route{s, subscriber, /*live=*/true};
    subscriptions_by_subscriber_[subscriber].push_back(global);
    per_shard[s].push_back(BulkSubscribeItem{global, subscriber, std::move(raw)});
    out.push_back(global);
  }

  // One journal record covers the whole call: replay re-routes each item
  // deterministically through the same subscribe_sequence_ counter. If the
  // commit throws, unwind the bookkeeping above — nothing has reached a
  // shard yet, so the broker is exactly as before the call.
  if (journal_ != nullptr) {
    storage::JournalRecord record;
    record.type = storage::JournalRecord::Type::BulkSubscribe;
    record.subscriber = subscriber.value();
    record.bulk.reserve(texts.size());
    for (std::size_t i = 0; i < texts.size(); ++i) {
      record.bulk.push_back(storage::JournalRecord::BulkItem{
          out[i].value(), std::string(texts[i])});
    }
    try {
      journal_commit_locked(std::move(record));
    } catch (...) {
      auto& list = subscriptions_by_subscriber_[subscriber];
      for (std::size_t i = out.size(); i-- > 0;) {
        routes_[out[i].value()].live = false;
        free_globals_.push_back(out[i]);
        list.pop_back();
      }
      subscribe_sequence_ -= texts.size();
      throw;
    }
    for (std::size_t i = 0; i < texts.size(); ++i) {
      record_text_locked(out[i], texts[i]);
    }
  }

  // One temporary pool serves every shard applied inline from this call; it
  // exists only while large batches are being built (the broker's own pool_
  // may be mid-parallel_for on the data plane, and ThreadPool joins are
  // pool-global, so sharing it would entangle the two).
  std::unique_ptr<ThreadPool> build_pool;
  const auto build_pool_for = [&](std::size_t items) -> ThreadPool* {
    if (items < kBulkBuildParallelThreshold) return nullptr;
    if (build_pool == nullptr) {
      const std::size_t hw = std::thread::hardware_concurrency();
      build_pool = std::make_unique<ThreadPool>(
          std::min<std::size_t>(hw == 0 ? 1 : hw, 8));
    }
    return build_pool.get();
  };

  for (std::size_t s = 0; s < shards_.size(); ++s) {
    if (per_shard[s].empty()) continue;
    Shard& shard = *shards_[s];
    const std::uint64_t generation =
        issue_generation_.load(std::memory_order_relaxed) + 1;
    const std::uint64_t issue_tick = cells_ == nullptr ? 0 : obs::now_ticks();
    std::unique_lock<std::shared_mutex> shard_lock(shard.mutex,
                                                   std::try_to_lock);
    if (shard_lock.owns_lock()) {
      ShardWriteGuard gate(shard);
      drain_shard(shard, gate);
      gate.enter();
      // Pre-size the shard's predicate table for the incoming batch (a few
      // predicates per subscription; over-reserving only rounds up to what
      // vector growth would have allocated anyway).
      shard.table.reserve(shard.table.id_bound() + per_shard[s].size() * 4);
      shard.engine->begin_bulk_load();
      for (const BulkSubscribeItem& item : per_shard[s]) {
        apply_subscribe(shard, item.global, item.owner, *item.raw);
      }
      shard.engine->finish_bulk_load(build_pool_for(per_shard[s].size()));
      issue_generation_.store(generation, std::memory_order_release);
      shard.fence.advance(generation);
      record_apply_latency(issue_tick);
    } else {
      // Another mutator holds the shard: one command carries the whole
      // batch; the next drain applies it with the same bulk-load window
      // (sequential build — the drainer may be the apply thread or a pool
      // worker, and nesting pool joins deadlocks).
      ShardCommand command;
      command.kind = ShardCommand::Kind::BulkSubscribe;
      command.bulk = std::move(per_shard[s]);
      command.generation = generation;
      command.enqueue_tick = issue_tick;
      shard.queued_commands.fetch_add(1, std::memory_order_relaxed);
      shard.commands.push(std::move(command));
      issue_generation_.store(generation, std::memory_order_release);
      signal_apply();
    }
  }
  if (cells_ != nullptr) cells_->subscribe_ops.add(out.size());
  return out;
}

void ShardedBroker::issue_unsubscribe_locked(SubscriptionId global,
                                             const Route& route) {
  if (journal_ != nullptr && global.value() < texts_.size()) {
    texts_[global.value()].clear();
    texts_[global.value()].shrink_to_fit();
  }
  Shard& shard = *shards_[route.shard];
  const std::uint64_t generation =
      issue_generation_.load(std::memory_order_relaxed) + 1;
  const std::uint64_t issue_tick = cells_ == nullptr ? 0 : obs::now_ticks();
  std::unique_lock<std::shared_mutex> shard_lock(shard.mutex,
                                                 std::try_to_lock);
  if (shard_lock.owns_lock()) {
    ShardWriteGuard gate(shard);
    drain_shard(shard, gate);
    gate.enter();
    apply_unsubscribe(shard, global);
    issue_generation_.store(generation, std::memory_order_release);
    shard.fence.advance(generation);
    record_apply_latency(issue_tick);
    // The engine no longer knows the id — but a batch mid-delivery may
    // still hold it in buffered match records (or, async mode, in pending
    // outbox batches), and immediate reuse would relabel those stale
    // notifications as the new subscription. Reuse inline only when no
    // batch is in flight and no accepted delivery is pending (always true
    // for sequential inline callers, preserving the seed's LIFO ids);
    // otherwise quarantine.
    if (publish_idle_probe() && (delivery_ == nullptr || delivery_->idle())) {
      free_globals_.push_back(global);
    } else {
      retired_globals_.push_back(
          RetiredGlobal{global, route.shard, route.owner, generation});
    }
  } else {
    ShardCommand command;
    command.kind = ShardCommand::Kind::Unsubscribe;
    command.global = global;
    command.generation = generation;
    command.enqueue_tick = issue_tick;
    shard.queued_commands.fetch_add(1, std::memory_order_relaxed);
    shard.commands.push(std::move(command));
    issue_generation_.store(generation, std::memory_order_release);
    signal_apply();
    retired_globals_.push_back(
        RetiredGlobal{global, route.shard, route.owner, generation});
  }
}

bool ShardedBroker::unsubscribe(SubscriptionId subscription) {
  const std::lock_guard<std::mutex> lock(control_mutex_);
  if (!subscription.valid() || subscription.value() >= routes_.size() ||
      !routes_[subscription.value()].live) {
    return false;
  }
  // Journalled before any state changes: a commit failure leaves the
  // subscription fully live.
  if (journal_ != nullptr) {
    storage::JournalRecord record;
    record.type = storage::JournalRecord::Type::Unsubscribe;
    record.global = subscription.value();
    journal_commit_locked(std::move(record));
  }
  Route& route = routes_[subscription.value()];
  route.live = false;
  auto& list = subscriptions_by_subscriber_[route.owner];
  for (std::size_t i = 0; i < list.size(); ++i) {
    if (list[i] == subscription) {
      list[i] = list.back();
      list.pop_back();
      break;
    }
  }
  issue_unsubscribe_locked(subscription, route);
  if (cells_ != nullptr) cells_->unsubscribe_ops.add();
  return true;
}

std::size_t ShardedBroker::drain_shard(Shard& shard, ShardWriteGuard& gate) {
  // Snapshot before popping: every command issued at or below the snapshot
  // is already fully linked in the queue (generations are published after
  // the push), so after draining we may advance the fence to it. Advancing
  // on an empty queue needs no write gate: the caller's shard mutex
  // excludes other appliers, and a not-yet-linked command cannot be covered
  // by the snapshot.
  const std::uint64_t cover =
      issue_generation_.load(std::memory_order_acquire);
  std::size_t applied = 0;
  while (auto command = shard.commands.pop()) {
    shard.queued_commands.fetch_sub(1, std::memory_order_relaxed);
    gate.enter();  // first command pays the grace period; the rest ride it
    apply_command(shard, std::move(*command));
    ++applied;
  }
  shard.fence.advance(cover);
  return applied;
}

void ShardedBroker::apply_command(Shard& shard, ShardCommand&& command) {
  switch (command.kind) {
    case ShardCommand::Kind::Subscribe:
      apply_subscribe(shard, command.global, command.owner, *command.raw);
      break;
    case ShardCommand::Kind::Unsubscribe:
      apply_unsubscribe(shard, command.global);
      break;
    case ShardCommand::Kind::BulkSubscribe:
      shard.engine->begin_bulk_load();
      for (const BulkSubscribeItem& item : command.bulk) {
        apply_subscribe(shard, item.global, item.owner, *item.raw);
      }
      shard.engine->finish_bulk_load(nullptr);
      break;
  }
  shard.fence.advance(command.generation);
  // Queue-residency latency (issue → applied): the recorded distribution
  // is exactly what the epoch refactor is meant to shrink — a command used
  // to sit behind the whole in-flight batch, now at most behind the chunks
  // in flight plus apply-thread wakeup.
  record_apply_latency(command.enqueue_tick);
}

void ShardedBroker::record_apply_latency(std::uint64_t issue_tick) {
  if (cells_ == nullptr || issue_tick == 0) return;
  const std::uint64_t now = obs::now_ticks();
  cells_->control_apply_latency.record(now > issue_tick ? now - issue_tick
                                                        : 0);
}

SubscriptionId ShardedBroker::apply_subscribe(
    Shard& shard, SubscriptionId global, SubscriberId owner,
    const parser_detail::RawNode& raw) {
  // Intern into the shard's own table: the predicates of a subscription
  // live (and are refcounted) exactly where its engine lives.
  const ast::Expr expr = intern_tree(raw, shard.table);
  const SubscriptionId local = shard.engine->add(expr.root());
  if (shard.to_global.size() <= local.value()) {
    shard.to_global.resize(local.value() + 1, SubscriptionId::invalid());
    shard.owner_of.resize(local.value() + 1, SubscriberId::invalid());
  }
  shard.to_global[local.value()] = global;
  shard.owner_of[local.value()] = owner;
  shard.local_of[global.value()] = local;
  return local;
}

void ShardedBroker::apply_unsubscribe(Shard& shard, SubscriptionId global) {
  const auto it = shard.local_of.find(global.value());
  NCPS_ASSERT(it != shard.local_of.end());
  const SubscriptionId local = it->second;
  shard.local_of.erase(it);
  const bool removed = shard.engine->remove(local);
  NCPS_ASSERT(removed);
  shard.to_global[local.value()] = SubscriptionId::invalid();
  shard.owner_of[local.value()] = SubscriberId::invalid();
}

void ShardedBroker::run_match_tasks(std::span<const Event> events) {
  const std::size_t shard_count = shards_.size();
  if (pool_ == nullptr) {
    // Seed path (one shard, one thread): drain and match under one
    // continuous exclusive lock through the engine's legacy match_batch, so
    // its last_stats()/cumulative_stats() keep their single-threaded
    // per-publish semantics. No epoch domain exists here; the guard is a
    // no-op and frees stay immediate.
    chunk_events_ = events.size();
    chunk_count_ = 1;
    if (match_buffers_.empty()) match_buffers_.resize(1);
    match_buffers_[0].clear();
    Shard& shard = *shards_[0];
    const std::lock_guard<std::shared_mutex> lock(shard.mutex);
    ShardWriteGuard gate(shard);
    drain_shard(shard, gate);
    ChunkSink sink(shard, match_buffers_[0]);
    shard.engine->match_batch(events, sink);
    return;
  }

  // Phase A — batch-start barrier: apply queued commands shard by shard, so
  // every command issued before this batch started is visible to all of it
  // (the "matched by every batch that starts after subscribe() returns"
  // contract). The apply thread usually leaves these queues empty; an empty
  // drain is a mutex round-trip plus a fence advance, no grace period.
  // Commands arriving *after* this point may still land mid-batch — the
  // apply thread or an inline control op takes the write gate between
  // chunks — which is the design: apply latency is bounded by the chunk
  // cap, not the batch.
  for (auto& shard : shards_) {
    const std::lock_guard<std::shared_mutex> lock(shard->mutex);
    ShardWriteGuard gate(*shard);
    drain_shard(*shard, gate);
  }

  // Chunking: enough (shard × chunk) tasks that stealing can level a
  // skewed shard, but no more — per-task cost is one epoch pin plus one
  // stats fold. The kMaxChunkEvents cap bounds how long a chunk can hold
  // its pin, which is what bounds every mutator's grace-period wait.
  const std::size_t workers = pool_->thread_count();
  std::size_t chunk = match_chunk_events_;
  if (scheduler_ == MatchScheduler::kPerShard) {
    chunk = events.size();
  } else if (chunk == 0) {
    const std::size_t target_tasks =
        std::max(shard_count, workers * kMatchTasksPerWorker);
    const std::size_t per_shard =
        std::max<std::size_t>(1, target_tasks / shard_count);
    chunk = (events.size() + per_shard - 1) / per_shard;
    chunk = std::min(chunk, kMaxChunkEvents);
  }
  chunk_events_ = std::max<std::size_t>(1, std::min(chunk, events.size()));
  chunk_count_ = (events.size() + chunk_events_ - 1) / chunk_events_;

  const std::size_t task_count = shard_count * chunk_count_;
  if (match_buffers_.size() < task_count) match_buffers_.resize(task_count);
  for (std::size_t t = 0; t < task_count; ++t) match_buffers_[t].clear();

  // Phase B — concurrent matching: task t is chunk (t % chunk_count_) of
  // shard (t / chunk_count_). Shard-major, so the contiguous slices the
  // pool deals keep a worker on one shard's engine until it runs dry and
  // steals. Workers match lock-free inside an epoch-pinned EngineView on
  // their own slot; a shard's engine may be read by many workers at once,
  // and a mutator slips in whenever no chunk of that shard is pinned.
  const auto fn = [&](std::size_t task, std::size_t worker) {
    const std::size_t s = task / chunk_count_;
    const std::size_t first = (task % chunk_count_) * chunk_events_;
    const std::size_t last =
        std::min(events.size(), first + chunk_events_);
    Shard& shard = *shards_[s];
    MatchContext& ctx = *worker_contexts_[worker];
    ctx.stats.reset();
    {
      const EngineView view(*shard.engine, shard.epochs.get(), worker);
      ChunkSink sink(shard, match_buffers_[task]);
      view.match_range(events, first, last, sink, ctx);
    }
    shard_match_stats_[s]->add(ctx.stats);
  };
  const WorkStealingPool::RunStats run = pool_->run_tasks(task_count, fn);
  if (cells_ != nullptr) {
    cells_->match_tasks.add(run.tasks);
    cells_->steals.add(run.steals);
  }
}

void ShardedBroker::merge_all(std::span<const Event> events) {
  // Per-event slice bounds first: one counting pass over every task buffer
  // (cheap — an increment per match), prefix-summed into event_offsets_.
  // Each event then has a fixed destination slice in merged_, so the
  // per-event-range merge tasks write disjoint ranges with no
  // coordination.
  const std::size_t event_count = events.size();
  event_offsets_.assign(event_count + 1, 0);
  const std::size_t task_count = shards_.size() * chunk_count_;
  for (std::size_t t = 0; t < task_count; ++t) {
    for (const ShardMatch& match : match_buffers_[t]) {
      ++event_offsets_[match.event_index + 1];
    }
  }
  for (std::size_t e = 0; e < event_count; ++e) {
    event_offsets_[e + 1] += event_offsets_[e];
  }
  merged_.resize(event_offsets_[event_count]);

  if (pool_ == nullptr || event_count == 1) {
    merge_event_range(0, event_count);
    return;
  }
  const std::size_t merge_tasks =
      std::min(event_count, pool_->thread_count() * kMergeTasksPerWorker);
  const std::size_t range = (event_count + merge_tasks - 1) / merge_tasks;
  pool_->run_tasks(merge_tasks, [&](std::size_t task, std::size_t) {
    const std::size_t first = std::min(task * range, event_count);
    merge_event_range(first, std::min(first + range, event_count));
  });
}

void ShardedBroker::merge_event_range(std::size_t first, std::size_t last) {
  if (first >= last) return;
  const std::size_t shard_count = shards_.size();
  // Each task buffer is ordered by event index (a chunk's events are
  // processed in order), so within one chunk a cursor per shard walks the
  // range; the cursors start at lower_bound(first event of the overlap).
  std::vector<std::size_t> cursor(shard_count);
  for (std::size_t c = first / chunk_events_;
       c < chunk_count_ && c * chunk_events_ < last; ++c) {
    const std::size_t chunk_begin = c * chunk_events_;
    const std::size_t e0 = std::max(first, chunk_begin);
    const std::size_t e1 = std::min(last, chunk_begin + chunk_events_);
    for (std::size_t s = 0; s < shard_count; ++s) {
      const auto& buffer = match_buffers_[s * chunk_count_ + c];
      cursor[s] = static_cast<std::size_t>(
          std::lower_bound(buffer.begin(), buffer.end(), e0,
                           [](const ShardMatch& m, std::size_t e) {
                             return m.event_index < e;
                           }) -
          buffer.begin());
    }
    for (std::size_t e = e0; e < e1; ++e) {
      std::size_t pos = event_offsets_[e];
      for (std::size_t s = 0; s < shard_count; ++s) {
        const auto& buffer = match_buffers_[s * chunk_count_ + c];
        std::size_t& cur = cursor[s];
        while (cur < buffer.size() && buffer[cur].event_index == e) {
          merged_[pos++] = buffer[cur++];
        }
      }
      // Ascending global id: the merged order is independent of shard
      // count, chunking and steal interleaving (ids are unique per event).
      std::sort(
          merged_.begin() + static_cast<std::ptrdiff_t>(event_offsets_[e]),
          merged_.begin() + static_cast<std::ptrdiff_t>(pos),
          [](const ShardMatch& a, const ShardMatch& b) {
            return a.subscription < b.subscription;
          });
    }
  }
}

std::size_t ShardedBroker::merge_and_deliver(std::span<const Event> events,
                                             const CallbackMap& callbacks,
                                             std::uint64_t publish_tick) {
  std::size_t delivered = 0;
  for (std::size_t e = 0; e < events.size(); ++e) {
    const std::size_t end = event_offsets_[e + 1];
    for (std::size_t i = event_offsets_[e]; i < end; ++i) {
      const ShardMatch& match = merged_[i];
      const auto cb = callbacks.find(match.owner);
      if (cb == callbacks.end()) continue;  // unregistered mid-batch
      cb->second(Notification{match.owner, match.subscription, &events[e]});
      ++delivered;
    }
  }
  // One clock read per *batch*, weighted by its notification count — the
  // same amortisation the async path uses per drained outbox batch. A
  // per-event read costs ~10% of publish throughput on a cheap workload
  // (one clock read against a few hundred ns of matching), far past the
  // 2% budget bench_obs enforces; the resolution lost is within one
  // batch's delivery span, which is what the histogram's latency means
  // here anyway (publish_batch entry → notification emit).
  if (cells_ != nullptr) {
    cells_->inline_notifications.add(delivered);
    if (delivered > 0 && publish_tick != 0) {
      const std::uint64_t now = obs::now_ticks();
      cells_->inline_latency.record_n(
          now > publish_tick ? now - publish_tick : 0, delivered);
    }
  }
  return delivered;
}

std::size_t ShardedBroker::merge_and_enqueue(std::span<const Event> events,
                                             std::uint64_t publish_tick) {
  // Async mode: the merged matches become per-subscriber outbox batches.
  // The plane filters subscribers unregistered since matching via its own
  // snapshot, so no callback map is consulted here.
  delivery_->begin_batch(events, publish_tick);
  for (std::size_t e = 0; e < events.size(); ++e) {
    const std::size_t end = event_offsets_[e + 1];
    for (std::size_t i = event_offsets_[e]; i < end; ++i) {
      delivery_->add_match(static_cast<std::uint32_t>(e), merged_[i].owner,
                           merged_[i].subscription);
    }
  }
  return delivery_->commit_batch();
}

std::size_t ShardedBroker::publish(const Event& event) {
  return publish_batch(std::span<const Event>(&event, 1));
}

std::size_t ShardedBroker::publish_batch(std::span<const Event> events) {
  if (events.empty()) return 0;
  const std::lock_guard<std::mutex> lock(publish_mutex_);
  // Latency epoch for this batch: every notification it produces is
  // measured against this tick, whichever thread eventually emits it.
  const std::uint64_t publish_tick =
      cells_ == nullptr ? 0 : obs::now_ticks();
  if (cells_ != nullptr) {
    cells_->publish_batches.add();
    cells_->publish_events.add(events.size());
  }
  publishing_thread_.store(std::this_thread::get_id(),
                           std::memory_order_relaxed);
  run_match_tasks(events);
  merge_all(events);
  std::size_t delivered;
  if (delivery_ != nullptr) {
    delivered = merge_and_enqueue(events, publish_tick);
  } else {
    // Snapshot after matching: a subscriber registered while the batch was
    // matching is deliverable, one unregistered is skipped.
    const std::shared_ptr<const CallbackMap> callbacks = callbacks_.load();
    delivered = merge_and_deliver(events, *callbacks, publish_tick);
  }
  // Delivery (inline) or hand-off (async) done: stale match records from
  // this batch are dead, so quarantined global ids gated on this epoch move
  // to their next reclamation stage.
  publishing_thread_.store(std::thread::id(), std::memory_order_relaxed);
  publish_epoch_.fetch_add(1, std::memory_order_release);
  return delivered;
}

void ShardedBroker::flush() {
  if (delivery_ != nullptr) delivery_->flush();
}

std::optional<DeliveryStats> ShardedBroker::delivery_stats(
    SubscriberId subscriber) const {
  if (delivery_ == nullptr) return std::nullopt;
  return delivery_->stats(subscriber);
}

bool ShardedBroker::publish_idle_probe() {
  // A delivery callback re-entering the control plane runs on the thread
  // that owns publish_mutex_; try_lock there would be UB, and the answer
  // is known anyway: a batch is in flight.
  if (publishing_thread_.load(std::memory_order_relaxed) ==
      std::this_thread::get_id()) {
    return false;
  }
  if (publish_mutex_.try_lock()) {
    publish_mutex_.unlock();
    return true;
  }
  return false;
}

void ShardedBroker::wait_applied(std::uint64_t generation) {
  // Kick the apply thread first: an inline-applied command advances only
  // its own shard's fence, so idle shards may sit below `generation` with
  // nothing queued and no batch coming to drain them. One drain pass
  // advances every fence to the issued generation. Seed brokers (single
  // shard, no pool) have no apply thread and no lag either: every command
  // applies inline and advances the only fence before returning.
  signal_apply();
  for (auto& shard : shards_) shard->fence.wait_until(generation);
}

bool ShardedBroker::apply_pending() const {
  for (const auto& shard : shards_) {
    if (shard->queued_commands.load(std::memory_order_acquire) > 0) {
      return true;
    }
  }
  return false;
}

void ShardedBroker::signal_apply() {
  if (!apply_thread_.joinable()) return;
  // The kick is level-triggered state under the CV mutex, so the apply
  // thread cannot check its predicate, lose the CPU, miss this notify and
  // sleep through a request it has not yet served.
  {
    const std::lock_guard<std::mutex> lock(apply_cv_mutex_);
    apply_kick_ = true;
  }
  apply_cv_.notify_one();
}

void ShardedBroker::apply_loop() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(apply_cv_mutex_);
      apply_cv_.wait(lock, [this] {
        return apply_stop_ || apply_kick_ || apply_pending();
      });
      if (apply_stop_) return;
      apply_kick_ = false;  // consumed by the drain pass below
    }
    // Drain every shard, not just those with queued commands: fences must
    // advance everywhere for wait_applied (which waits on the max over all
    // shards) to be self-driving, and an empty drain is nearly free — the
    // write gate is entered lazily, so idle shards pay a mutex round-trip
    // and a fence advance, never a grace period.
    std::size_t applied = 0;
    for (auto& shard : shards_) {
      const std::lock_guard<std::shared_mutex> lock(shard->mutex);
      ShardWriteGuard gate(*shard);
      applied += drain_shard(*shard, gate);
    }
    if (applied == 0 && apply_pending()) {
      // A producer is mid-push (queued_commands incremented, node not yet
      // linked — the MPSC queue's benign window). Yield rather than spin
      // through the CV, whose predicate would stay true.
      std::this_thread::yield();
    }
  }
}

void ShardedBroker::quiesce() {
  // Taking the publish lock waits out the in-flight batch, deliveries
  // included; draining then applies everything queued. Batches started
  // after release see every prior control command applied.
  //
  // NOT a snapshot fence: control_mutex_ is never held here, so a
  // concurrent control thread can enqueue a command on a shard *after* its
  // per-shard drain below but before quiesce() returns — the caller
  // observes "quiesced" while that shard's engine still lags its queue.
  // That ordering gap is harmless for quiesce()'s contract (later batches
  // drain before matching) but fatal for snapshotting, which must capture
  // engines with every issued command applied. checkpoint() therefore
  // builds its own fence — publish lock + control lock + all shard locks —
  // and asserts every shard's generation fence has caught up to
  // issue_generation_ before serialising a byte.
  const std::lock_guard<std::mutex> publish_lock(publish_mutex_);
  for (auto& shard : shards_) {
    const std::lock_guard<std::shared_mutex> shard_lock(shard->mutex);
    ShardWriteGuard gate(*shard);
    drain_shard(*shard, gate);
  }
  // Async mode: the in-flight batch only *enqueued* its notifications;
  // the delivery flush completes the barrier (closed outboxes discard, so
  // unregistered subscribers cannot fire during it). Holding the publish
  // lock keeps later batches ordered after the fence.
  if (delivery_ != nullptr) delivery_->flush();
}

std::size_t ShardedBroker::subscription_count() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    const std::shared_lock<std::shared_mutex> lock(shard->mutex);
    total += shard->engine->subscription_count();
  }
  return total;
}

std::size_t ShardedBroker::subscriber_count() const {
  if (delivery_ != nullptr) {
    // Async mode keeps no callback map; the session table is authoritative.
    const std::lock_guard<std::mutex> lock(control_mutex_);
    return subscriptions_by_subscriber_.size();
  }
  return callbacks_.load()->size();
}

std::size_t ShardedBroker::shard_subscription_count(std::size_t shard) const {
  NCPS_EXPECTS(shard < shards_.size());
  const std::shared_lock<std::shared_mutex> lock(shards_[shard]->mutex);
  return shards_[shard]->engine->subscription_count();
}

obs::MetricsSnapshot ShardedBroker::metrics() const {
  obs::MetricsSnapshot snap;
  // Registry cells first (publish counters, latency histograms, delivery
  // and journal cells): a pure copy of relaxed atomics, no broker locks.
  registry_.snapshot_into(snap);

  // Per-shard samples under each shard's lock (shared — sampling is a
  // read), taken one at a time so a long batch on shard 3 doesn't block
  // sampling shard 0. Two disjoint sources fold together: the engine's own
  // cumulative stats (grown only by the legacy single-threaded publish
  // path, plain integers under the exclusive lock) and the per-shard
  // AtomicMatchStats cells the concurrent match tasks feed once per task —
  // still zero atomics per event on the match path.
  const std::uint64_t issued =
      issue_generation_.load(std::memory_order_acquire);
  std::size_t subscriptions_total = 0;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    Shard& shard = *shards_[s];
    MatchStats stats;
    std::size_t subs = 0;
    {
      const std::shared_lock<std::shared_mutex> lock(shard.mutex);
      stats = shard.engine->cumulative_stats();
      subs = shard.engine->subscription_count();
    }
    stats.accumulate(shard_match_stats_[s]->load());
    subscriptions_total += subs;
    const obs::Labels labels{{"shard", std::to_string(s)}};
    snap.add_counter("ncps_match_events_total", labels, stats.events);
    snap.add_counter("ncps_match_fulfilled_predicates_total", labels,
                     stats.fulfilled_predicates);
    snap.add_counter("ncps_match_candidates_total", labels, stats.candidates);
    snap.add_counter("ncps_match_tree_evaluations_total", labels,
                     stats.tree_evaluations);
    snap.add_counter("ncps_match_node_evaluations_total", labels,
                     stats.node_evaluations);
    snap.add_counter("ncps_match_truth_lookups_total", labels,
                     stats.truth_lookups);
    snap.add_counter("ncps_match_hit_increments_total", labels,
                     stats.hit_increments);
    snap.add_counter("ncps_match_counter_comparisons_total", labels,
                     stats.counter_comparisons);
    snap.add_counter("ncps_match_covering_skips_total", labels,
                     stats.covering_skips);
    snap.add_counter("ncps_match_matches_total", labels, stats.matches);
    // Control-plane health: how far this shard's applied generation trails
    // the broker's issue generation (saturating — the issue counter read
    // may predate a concurrent advance), and commands still queued.
    const std::uint64_t applied = shard.fence.applied();
    snap.add_gauge("ncps_control_apply_lag", labels,
                   static_cast<double>(issued > applied ? issued - applied
                                                        : 0));
    snap.add_gauge(
        "ncps_control_queue_depth", labels,
        static_cast<double>(
            shard.queued_commands.load(std::memory_order_relaxed)));
    // Epoch-reclaim backlog: retired entries (forest nodes, posting blocks)
    // whose grace period has not yet passed. Persistent growth here means a
    // reader is pinning an epoch far longer than one chunk should take.
    if (shard.epochs != nullptr) {
      snap.add_gauge("ncps_epoch_reclaim_deferred", labels,
                     static_cast<double>(shard.epochs->deferred_count()));
    }
    snap.add_gauge("ncps_shard_subscriptions", labels,
                   static_cast<double>(subs));
  }
  snap.add_gauge("ncps_shards", {}, static_cast<double>(shards_.size()));
  // Match scheduler health: deque depths and how evenly the pool's workers
  // are loaded. Busy fraction is cumulative drain time over pool lifetime —
  // a persistently low worker under a hot batch stream means the chunking
  // is too coarse to steal.
  if (pool_ != nullptr) {
    const std::vector<WorkStealingPool::WorkerSample> samples =
        pool_->sample_workers();
    const std::uint64_t lifetime = pool_->lifetime_ns();
    double queued_total = 0;
    for (std::size_t w = 0; w < samples.size(); ++w) {
      queued_total += static_cast<double>(samples[w].queued);
      snap.add_gauge("ncps_worker_busy_fraction",
                     {{"worker", std::to_string(w)}},
                     lifetime == 0
                         ? 0.0
                         : static_cast<double>(samples[w].busy_ns) /
                               static_cast<double>(lifetime));
    }
    snap.add_gauge("ncps_pool_queue_depth", {}, queued_total);
    snap.add_gauge("ncps_pool_workers", {},
                   static_cast<double>(samples.size()));
  }
  snap.add_gauge("ncps_subscriptions", {},
                 static_cast<double>(subscriptions_total));
  snap.add_gauge("ncps_subscribers", {},
                 static_cast<double>(subscriber_count()));
  if (delivery_ != nullptr) delivery_->sample_metrics(snap);
  if (journal_ != nullptr) {
    snap.add_gauge("ncps_journal_sequence", {},
                   static_cast<double>(journal_sequence()));
  }
  return snap;
}

MemoryBreakdown ShardedBroker::memory() const {
  MemoryBreakdown mem;
  if (shards_.size() == 1) {
    // Seed broker component names, so existing breakdown consumers and the
    // memory benches keep working unchanged.
    const std::shared_lock<std::shared_mutex> lock(shards_[0]->mutex);
    mem.add_nested("engine/", shards_[0]->engine->memory());
    mem.add_nested("predicates/", shards_[0]->table.memory());
  } else {
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      const std::shared_lock<std::shared_mutex> lock(shards_[s]->mutex);
      const std::string prefix = "shard" + std::to_string(s) + "/";
      mem.add_nested(prefix + "engine/", shards_[s]->engine->memory());
      mem.add_nested(prefix + "predicates/", shards_[s]->table.memory());
    }
  }
  return mem;
}

}  // namespace ncps
