// Multi-broker overlay with content-based routing.
//
// Brokers form an acyclic topology (enforced at connect time) over the
// simulated network. Subscriptions propagate by reverse-path flooding: every
// broker records, per link, the subscriptions whose subscriber lives
// somewhere beyond that link, in a per-link *interest engine* (the same
// filtering machinery as local matching — routing decisions ARE filtering
// decisions, which is why the paper's engine choice matters on routers too).
// Events are forwarded over a link only if that link's interest engine
// reports at least one match, so event traffic follows subscriber interest
// instead of flooding.
//
// Protocol messages (Subscribe / Unsubscribe / Publish) ride SimNetwork; a
// publish that races subscription propagation sees the overlay's eventual
// consistency exactly as a real deployment would — tests quiesce (run())
// between control and data operations when they need a consistent view.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "broker/broker.h"
#include "net/sim_network.h"

namespace ncps {

/// Overlay-wide subscription identity: origin broker + per-origin counter.
struct GlobalSubId {
  std::uint64_t raw = 0;

  GlobalSubId() = default;
  GlobalSubId(BrokerId origin, std::uint32_t counter)
      : raw((static_cast<std::uint64_t>(origin.value()) << 32) | counter) {}

  [[nodiscard]] BrokerId origin() const {
    return BrokerId(static_cast<std::uint32_t>(raw >> 32));
  }
  friend bool operator==(GlobalSubId a, GlobalSubId b) = default;
};

struct OverlayMessage {
  enum class Kind : std::uint8_t { Subscribe, Unsubscribe, Publish };
  Kind kind = Kind::Publish;
  GlobalSubId global_sub;  // Subscribe/Unsubscribe
  std::string text;        // Subscribe
  Event event;             // Publish
};

class BrokerNetwork {
 public:
  /// `enable_covering` turns on covering-based routing-table reduction: a
  /// remote subscription already covered by one installed on the same link
  /// is *shadowed* — not registered with the link's engine and not forwarded
  /// further (its events already route through the cover's interest). When
  /// the cover is unsubscribed, shadowed subscriptions are reinstated and
  /// their propagation resumes, so delivery is unaffected.
  explicit BrokerNetwork(EngineKind engine = EngineKind::NonCanonical,
                         bool enable_covering = false)
      : engine_kind_(engine), covering_enabled_(enable_covering) {}

  /// Full options form: every broker in the overlay is constructed with
  /// `options` — in particular DeliveryOptions::mode == Async gives each
  /// node an async delivery plane, so local deliveries come off the routing
  /// path. run() flushes the planes at quiescence.
  BrokerNetwork(BrokerOptions options, bool enable_covering)
      : engine_kind_(options.engine),
        covering_enabled_(enable_covering),
        broker_options_(options) {}

  BrokerId add_broker();

  /// Link two brokers. The topology must stay acyclic; a connect that would
  /// close a cycle throws.
  void connect(BrokerId a, BrokerId b, SimTime latency);

  SubscriberId add_subscriber(BrokerId at, Broker::NotifyFn callback);

  /// Subscribe at a broker; propagates interest through the overlay.
  GlobalSubId subscribe(BrokerId at, SubscriberId subscriber,
                        std::string_view text);

  /// Unsubscribe; must be issued at the subscription's origin broker.
  bool unsubscribe(GlobalSubId id);

  /// Publish an event at a broker. Local subscribers are notified
  /// immediately; remote deliveries happen as the network drains.
  void publish(BrokerId at, const Event& event);

  /// Drain the network to quiescence; returns messages delivered. When the
  /// local brokers run an async delivery plane, their outboxes are flushed
  /// after the drain, so on return every notification implied by the
  /// drained traffic has reached its callback.
  std::size_t run();

  [[nodiscard]] std::size_t broker_count() const { return nodes_.size(); }
  [[nodiscard]] SimTime now() const { return net_.now(); }
  [[nodiscard]] std::uint64_t messages_sent() const {
    return net_.messages_sent();
  }
  /// Notifications handed to subscriber callbacks (async delivery planes:
  /// accepted for delivery; exact again after run()'s flush under the
  /// lossless Block policy).
  [[nodiscard]] std::uint64_t notifications_delivered() const {
    return notifications_;
  }
  [[nodiscard]] AttributeRegistry& attributes() { return attrs_; }
  [[nodiscard]] Broker& broker(BrokerId id) {
    NCPS_EXPECTS(id.value() < nodes_.size());
    return *nodes_[id.value()]->local;
  }

  /// Remote subscriptions registered in the interest engine of the link
  /// `at → neighbor` (shadowed subscriptions excluded) — the routing-table
  /// size covering is meant to shrink.
  [[nodiscard]] std::size_t remote_interest_count(BrokerId at,
                                                  BrokerId neighbor);
  /// Subscriptions currently shadowed by a cover on that link.
  [[nodiscard]] std::size_t shadowed_count(BrokerId at, BrokerId neighbor);

  [[nodiscard]] std::vector<BrokerId> neighbors(BrokerId at) const {
    return net_.neighbors(at);
  }

 private:
  struct ShadowEntry {
    std::uint64_t global;
    std::string text;
  };

  /// Interest in subscriptions living beyond one link.
  struct LinkInterest {
    PredicateTable table;
    std::unique_ptr<FilterEngine> engine;
    std::unordered_map<std::uint64_t, SubscriptionId> by_global;
    // Covering support: parsed forms of registered subscriptions (for
    // covers() checks) and per-cover shadow lists.
    std::unordered_map<std::uint64_t, ast::Expr> registered_exprs;
    std::unordered_map<std::uint64_t, std::vector<ShadowEntry>> shadows;
  };

  struct NodeState {
    std::unique_ptr<Broker> local;
    // Keyed by neighbor broker id.
    std::unordered_map<std::uint32_t, std::unique_ptr<LinkInterest>> links;
    std::uint32_t next_sub_counter = 0;
  };

  struct SubRecord {
    BrokerId origin;
    SubscriptionId local_id;
  };

  LinkInterest& link_interest(BrokerId node, BrokerId neighbor);
  void handle(const SimNetwork<OverlayMessage>::Delivery& delivery);
  void deliver_local(BrokerId at, const Event& event);
  void forward_event(BrokerId at, BrokerId arrived_from, const Event& event);

  /// Install a remote subscription into the link interest; returns true if
  /// it was registered (and should be forwarded), false if shadowed.
  bool install_remote(LinkInterest& interest, std::uint64_t global,
                      const std::string& text);
  /// Remove a remote subscription; reinstates its shadows. Returns true if
  /// it had been registered here (⇒ the unsubscribe should be forwarded).
  bool remove_remote(BrokerId at, BrokerId from, std::uint64_t global);

  [[nodiscard]] std::uint32_t find_root(std::uint32_t node);

  EngineKind engine_kind_;
  bool covering_enabled_;
  BrokerOptions broker_options_{};
  AttributeRegistry attrs_;
  SimNetwork<OverlayMessage> net_;
  std::vector<std::unique_ptr<NodeState>> nodes_;
  std::unordered_map<std::uint64_t, SubRecord> subs_;
  std::vector<std::uint32_t> union_find_;
  std::uint64_t notifications_ = 0;
  std::vector<SubscriptionId> match_scratch_;
};

}  // namespace ncps
