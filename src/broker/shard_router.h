// Subscription placement for the sharded broker.
//
// Each subscription lives in exactly one engine shard; every published event
// must therefore visit every shard, and throughput scales because each shard
// carries ~1/N of the subscription population (phase-2 work is per-shard).
// The router's job is purely to spread subscriptions evenly.
//
// Under the default kSpread policy the routing key mixes the subscriber id
// with a broker-wide registration sequence number: hashing the subscriber
// alone would pin a heavy subscriber's entire portfolio to one shard, while
// the sequence component spreads even a single subscriber's subscriptions
// across all shards. kSubscriberAffine does exactly the opposite on
// purpose — it hashes the subscriber alone, colocating a subscriber's whole
// portfolio on one shard. That is the principled way to produce shard skew
// (a heavy subscriber = a hot shard), which the work-stealing benchmarks
// use to measure what chunk stealing buys; it is also what a deployment
// would pick if per-subscriber locality mattered more than balance.
// Either way, placement is deterministic for a given registration history,
// which the shard-equivalence property tests rely on.
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/contracts.h"
#include "common/ids.h"

namespace ncps {

/// How subscriptions are spread over shards (see file comment).
enum class ShardPlacement : std::uint8_t {
  kSpread,            ///< mix(subscriber, sequence): even load, the default
  kSubscriberAffine,  ///< mix(subscriber): one subscriber → one shard
};

class ShardRouter {
 public:
  explicit ShardRouter(std::size_t shard_count,
                       ShardPlacement placement = ShardPlacement::kSpread);

  /// Shard for the `sequence`-th successful registration by `subscriber`.
  [[nodiscard]] std::uint32_t route(SubscriberId subscriber,
                                    std::uint64_t sequence) const;

  [[nodiscard]] std::size_t shard_count() const { return shard_count_; }
  [[nodiscard]] ShardPlacement placement() const { return placement_; }

 private:
  std::size_t shard_count_;
  ShardPlacement placement_;
};

}  // namespace ncps
