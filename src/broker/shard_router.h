// Subscription placement for the sharded broker.
//
// Each subscription lives in exactly one engine shard; every published event
// must therefore visit every shard, and throughput scales because each shard
// carries ~1/N of the subscription population (phase-2 work is per-shard).
// The router's job is purely to spread subscriptions evenly.
//
// The routing key mixes the subscriber id with a broker-wide registration
// sequence number: hashing the subscriber alone would pin a heavy
// subscriber's entire portfolio to one shard, while the sequence component
// spreads even a single subscriber's subscriptions across all shards.
// Placement is deterministic for a given registration history, which the
// shard-equivalence property tests rely on.
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/contracts.h"
#include "common/ids.h"

namespace ncps {

class ShardRouter {
 public:
  explicit ShardRouter(std::size_t shard_count);

  /// Shard for the `sequence`-th successful registration by `subscriber`.
  [[nodiscard]] std::uint32_t route(SubscriberId subscriber,
                                    std::uint64_t sequence) const;

  [[nodiscard]] std::size_t shard_count() const { return shard_count_; }

 private:
  std::size_t shard_count_;
};

}  // namespace ncps
