#include "broker/broker.h"

namespace ncps {

std::unique_ptr<Broker> Broker::create(AttributeRegistry& attrs,
                                       EngineKind engine) {
  return std::make_unique<Broker>(attrs, engine);
}

std::unique_ptr<Broker> Broker::create(AttributeRegistry& attrs,
                                       BrokerOptions options) {
  return std::make_unique<Broker>(attrs, options);
}

}  // namespace ncps
