#include "broker/broker.h"

namespace ncps {

std::unique_ptr<Broker> Broker::create(AttributeRegistry& attrs,
                                       EngineKind engine) {
  return std::make_unique<Broker>(attrs, engine);
}

}  // namespace ncps
