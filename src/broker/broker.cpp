#include "broker/broker.h"

#include "common/contracts.h"

namespace ncps {

SubscriberId Broker::register_subscriber(NotifyFn callback) {
  NCPS_EXPECTS(callback != nullptr);
  const SubscriberId id(next_subscriber_++);
  subscribers_.emplace(id, std::move(callback));
  subscriptions_by_subscriber_.emplace(id, std::vector<SubscriptionId>{});
  return id;
}

void Broker::unregister_subscriber(SubscriberId subscriber) {
  const auto it = subscriptions_by_subscriber_.find(subscriber);
  if (it == subscriptions_by_subscriber_.end()) return;
  for (const SubscriptionId sub : it->second) {
    engine_->remove(sub);
    subscription_owner_.erase(sub);
  }
  subscriptions_by_subscriber_.erase(it);
  subscribers_.erase(subscriber);
}

SubscriptionId Broker::subscribe(SubscriberId subscriber,
                                 std::string_view text) {
  NCPS_EXPECTS(subscribers_.contains(subscriber));
  const ast::Expr expr = parse_subscription(text, *attrs_, table_);
  const SubscriptionId id = engine_->add(expr.root());
  subscription_owner_.emplace(id, subscriber);
  subscriptions_by_subscriber_[subscriber].push_back(id);
  return id;
}

bool Broker::unsubscribe(SubscriptionId subscription) {
  const auto owner = subscription_owner_.find(subscription);
  if (owner == subscription_owner_.end()) return false;
  engine_->remove(subscription);
  auto& list = subscriptions_by_subscriber_[owner->second];
  for (std::size_t i = 0; i < list.size(); ++i) {
    if (list[i] == subscription) {
      list[i] = list.back();
      list.pop_back();
      break;
    }
  }
  subscription_owner_.erase(owner);
  return true;
}

std::size_t Broker::publish(const Event& event) {
  match_scratch_.clear();
  engine_->match(event, match_scratch_);
  std::size_t delivered = 0;
  for (const SubscriptionId sub : match_scratch_) {
    const auto owner = subscription_owner_.find(sub);
    NCPS_ASSERT(owner != subscription_owner_.end());
    const auto cb = subscribers_.find(owner->second);
    NCPS_ASSERT(cb != subscribers_.end());
    cb->second(Notification{owner->second, sub, &event});
    ++delivered;
  }
  return delivered;
}

MemoryBreakdown Broker::memory() const {
  MemoryBreakdown mem;
  mem.add_nested("engine/", engine_->memory());
  mem.add_nested("predicates/", table_.memory());
  return mem;
}

}  // namespace ncps
