#include "broker/shard_router.h"

namespace ncps {

namespace {

/// splitmix64 finaliser: full-avalanche mixing so consecutive sequence
/// numbers land on uncorrelated shards.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

ShardRouter::ShardRouter(std::size_t shard_count, ShardPlacement placement)
    : shard_count_(shard_count), placement_(placement) {
  NCPS_EXPECTS(shard_count >= 1);
}

std::uint32_t ShardRouter::route(SubscriberId subscriber,
                                 std::uint64_t sequence) const {
  if (shard_count_ == 1) return 0;
  const std::uint64_t key =
      placement_ == ShardPlacement::kSubscriberAffine
          ? static_cast<std::uint64_t>(subscriber.value())
          : (static_cast<std::uint64_t>(subscriber.value()) << 32) ^ sequence;
  return static_cast<std::uint32_t>(mix64(key) % shard_count_);
}

}  // namespace ncps
