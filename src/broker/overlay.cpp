#include "broker/overlay.h"

#include "common/contracts.h"
#include "subscription/covering.h"
#include "subscription/parser.h"

namespace ncps {

BrokerId BrokerNetwork::add_broker() {
  const BrokerId id = net_.add_node();
  auto node = std::make_unique<NodeState>();
  node->local = std::make_unique<Broker>(
      attrs_,
      BrokerOptions{.engine = engine_kind_,
                    .delivery = broker_options_.delivery});
  nodes_.push_back(std::move(node));
  union_find_.push_back(id.value());
  return id;
}

std::uint32_t BrokerNetwork::find_root(std::uint32_t node) {
  while (union_find_[node] != node) {
    union_find_[node] = union_find_[union_find_[node]];  // path halving
    node = union_find_[node];
  }
  return node;
}

void BrokerNetwork::connect(BrokerId a, BrokerId b, SimTime latency) {
  NCPS_EXPECTS(a.value() < nodes_.size() && b.value() < nodes_.size());
  const std::uint32_t ra = find_root(a.value());
  const std::uint32_t rb = find_root(b.value());
  if (ra == rb) {
    throw std::invalid_argument(
        "overlay topology must be acyclic: link would close a cycle");
  }
  union_find_[ra] = rb;
  net_.connect(a, b, latency);
  // Interest engines exist from the moment the link does.
  (void)link_interest(a, b);
  (void)link_interest(b, a);
}

BrokerNetwork::LinkInterest& BrokerNetwork::link_interest(BrokerId node,
                                                          BrokerId neighbor) {
  auto& links = nodes_[node.value()]->links;
  auto it = links.find(neighbor.value());
  if (it == links.end()) {
    auto interest = std::make_unique<LinkInterest>();
    interest->engine = make_engine(engine_kind_, interest->table);
    it = links.emplace(neighbor.value(), std::move(interest)).first;
  }
  return *it->second;
}

SubscriberId BrokerNetwork::add_subscriber(BrokerId at,
                                           Broker::NotifyFn callback) {
  NCPS_EXPECTS(at.value() < nodes_.size());
  return nodes_[at.value()]->local->register_subscriber(std::move(callback));
}

GlobalSubId BrokerNetwork::subscribe(BrokerId at, SubscriberId subscriber,
                                     std::string_view text) {
  NodeState& node = *nodes_[at.value()];
  const SubscriptionId local_id = node.local->subscribe(subscriber, text);
  const GlobalSubId global(at, node.next_sub_counter++);
  subs_.emplace(global.raw, SubRecord{at, local_id});

  OverlayMessage msg;
  msg.kind = OverlayMessage::Kind::Subscribe;
  msg.global_sub = global;
  msg.text = std::string(text);
  for (const BrokerId neighbor : net_.neighbors(at)) {
    net_.send(at, neighbor, msg);
  }
  return global;
}

bool BrokerNetwork::unsubscribe(GlobalSubId id) {
  const auto it = subs_.find(id.raw);
  if (it == subs_.end()) return false;
  const SubRecord record = it->second;
  subs_.erase(it);
  nodes_[record.origin.value()]->local->unsubscribe(record.local_id);

  OverlayMessage msg;
  msg.kind = OverlayMessage::Kind::Unsubscribe;
  msg.global_sub = id;
  for (const BrokerId neighbor : net_.neighbors(record.origin)) {
    net_.send(record.origin, neighbor, msg);
  }
  return true;
}

void BrokerNetwork::publish(BrokerId at, const Event& event) {
  NCPS_EXPECTS(at.value() < nodes_.size());
  deliver_local(at, event);
  forward_event(at, BrokerId::invalid(), event);
}

void BrokerNetwork::deliver_local(BrokerId at, const Event& event) {
  notifications_ += nodes_[at.value()]->local->publish(event);
}

void BrokerNetwork::forward_event(BrokerId at, BrokerId arrived_from,
                                  const Event& event) {
  for (const BrokerId neighbor : net_.neighbors(at)) {
    if (neighbor == arrived_from) continue;
    LinkInterest& interest = link_interest(at, neighbor);
    // Content-based routing: the link is taken only when somebody beyond it
    // is interested. The interest check is itself a filtering-engine match.
    match_scratch_.clear();
    interest.engine->match(event, match_scratch_);
    if (match_scratch_.empty()) continue;
    OverlayMessage msg;
    msg.kind = OverlayMessage::Kind::Publish;
    msg.event = event;
    net_.send(at, neighbor, msg);
  }
}

void BrokerNetwork::handle(
    const SimNetwork<OverlayMessage>::Delivery& delivery) {
  const BrokerId at = delivery.to;
  const BrokerId from = delivery.from;
  const OverlayMessage& msg = delivery.payload;

  switch (msg.kind) {
    case OverlayMessage::Kind::Subscribe: {
      // Record interest on the link pointing back toward the subscriber…
      LinkInterest& interest = link_interest(at, from);
      const bool registered =
          install_remote(interest, msg.global_sub.raw, msg.text);
      // …and keep flooding outward — unless the subscription is shadowed
      // here: its events already route through the cover's interest, both on
      // this link and (by the same argument) on every link further out.
      if (registered) {
        for (const BrokerId neighbor : net_.neighbors(at)) {
          if (neighbor != from) net_.send(at, neighbor, msg);
        }
      }
      return;
    }
    case OverlayMessage::Kind::Unsubscribe: {
      const bool was_registered = remove_remote(at, from, msg.global_sub.raw);
      // A shadowed subscription was never announced beyond this broker, so
      // the unsubscribe stops here too.
      if (was_registered) {
        for (const BrokerId neighbor : net_.neighbors(at)) {
          if (neighbor != from) net_.send(at, neighbor, msg);
        }
      }
      return;
    }
    case OverlayMessage::Kind::Publish:
      deliver_local(at, msg.event);
      forward_event(at, from, msg.event);
      return;
  }
  NCPS_ASSERT(false && "unknown overlay message kind");
}

bool BrokerNetwork::install_remote(LinkInterest& interest,
                                   std::uint64_t global,
                                   const std::string& text) {
  ast::Expr expr = parse_subscription(text, attrs_, interest.table);
  if (covering_enabled_) {
    for (const auto& [cover_global, cover_expr] : interest.registered_exprs) {
      if (covers(cover_expr.root(), expr.root(), interest.table)) {
        interest.shadows[cover_global].push_back(ShadowEntry{global, text});
        return false;
      }
    }
  }
  const SubscriptionId local = interest.engine->add(expr.root());
  interest.by_global.emplace(global, local);
  if (covering_enabled_) {
    interest.registered_exprs.emplace(global, std::move(expr));
  }
  return true;
}

bool BrokerNetwork::remove_remote(BrokerId at, BrokerId from,
                                  std::uint64_t global) {
  LinkInterest& interest = link_interest(at, from);
  const auto it = interest.by_global.find(global);
  if (it == interest.by_global.end()) {
    // Possibly shadowed here: drop the shadow entry; nothing was announced
    // onward, so nothing else changes.
    for (auto& [cover, entries] : interest.shadows) {
      for (std::size_t i = 0; i < entries.size(); ++i) {
        if (entries[i].global == global) {
          entries[i] = std::move(entries.back());
          entries.pop_back();
          return false;
        }
      }
    }
    return false;
  }

  interest.engine->remove(it->second);
  interest.by_global.erase(it);
  interest.registered_exprs.erase(global);

  // Reinstate anything this subscription was covering: install it here (it
  // may land under another cover) and resume the interrupted propagation.
  if (const auto shadow_it = interest.shadows.find(global);
      shadow_it != interest.shadows.end()) {
    const std::vector<ShadowEntry> orphans = std::move(shadow_it->second);
    interest.shadows.erase(shadow_it);
    for (const ShadowEntry& orphan : orphans) {
      const bool registered = install_remote(interest, orphan.global,
                                             orphan.text);
      if (registered) {
        OverlayMessage msg;
        msg.kind = OverlayMessage::Kind::Subscribe;
        msg.global_sub.raw = orphan.global;
        msg.text = orphan.text;
        for (const BrokerId neighbor : net_.neighbors(at)) {
          if (neighbor != from) net_.send(at, neighbor, msg);
        }
      }
    }
  }
  return true;
}

std::size_t BrokerNetwork::remote_interest_count(BrokerId at,
                                                 BrokerId neighbor) {
  return link_interest(at, neighbor).by_global.size();
}

std::size_t BrokerNetwork::shadowed_count(BrokerId at, BrokerId neighbor) {
  std::size_t n = 0;
  for (const auto& [cover, entries] : link_interest(at, neighbor).shadows) {
    n += entries.size();
  }
  return n;
}

std::size_t BrokerNetwork::run() {
  const std::size_t delivered =
      net_.run([this](const SimNetwork<OverlayMessage>::Delivery& d) {
        handle(d);
      });
  // The network is quiescent; drain the delivery planes too, so callers see
  // every callback implied by the drained traffic before run() returns.
  if (broker_options_.delivery.mode == DeliveryMode::Async) {
    for (auto& node : nodes_) node->local->flush();
  }
  return delivered;
}

}  // namespace ncps
